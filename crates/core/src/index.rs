//! The index structure: layers, dominance edges, and pseudo-tuples.
//!
//! # Internal node numbering
//!
//! Queries traverse the layer DAG in roughly (coarse layer, fine sublayer,
//! score) order, so the index renumbers nodes at build time into exactly
//! that *traversal order*: real nodes get internal ids `0..n` sorted by
//! (coarse layer, fine sublayer, attribute sum, tuple id), pseudo nodes get
//! `n..n+p` sorted the same way within their own sublayers. All adjacency
//! (the crate-internal `EdgeArena`), in-degree arrays, seeds, the 2-d
//! chain, and the scoring
//! columns are stored in internal space, which turns the query's
//! relaxation loops and score gathers into near-sequential memory scans.
//! The permutation ([`DualLayerIndex::node_permutation`]) is applied only
//! at the API boundary: every public accessor speaks original `TupleId`s.

use crate::options::DlOptions;
use crate::zero::Zero2d;
use drtopk_common::{Columns, Relation, TupleId};

/// Node identifier inside the index graph. Values below `n` are real tuple
/// ids; values `n..n+p` address zero-layer pseudo-tuples. Both the public
/// (original) and the internal (traversal-ordered) numbering use this
/// type; public APIs always speak the original numbering.
pub type NodeId = u32;

/// Compressed sparse row adjacency over index nodes.
#[derive(Debug, Clone, Default)]
pub struct Csr {
    offsets: Vec<u32>,
    targets: Vec<NodeId>,
}

impl Csr {
    /// Builds a CSR from an edge list, also returning per-node in-degrees.
    pub fn from_edges(node_count: usize, edges: &mut [(NodeId, NodeId)]) -> (Csr, Vec<u32>) {
        let mut offsets = vec![0u32; node_count + 1];
        let mut indeg = vec![0u32; node_count];
        for &(s, t) in edges.iter() {
            offsets[s as usize + 1] += 1;
            indeg[t as usize] += 1;
        }
        for i in 0..node_count {
            offsets[i + 1] += offsets[i];
        }
        let mut targets = vec![0u32; edges.len()];
        let mut cursor = offsets.clone();
        for &(s, t) in edges.iter() {
            let c = &mut cursor[s as usize];
            targets[*c as usize] = t;
            *c += 1;
        }
        (Csr { offsets, targets }, indeg)
    }

    /// Out-neighbors of `node`.
    #[inline]
    pub fn out(&self, node: NodeId) -> &[NodeId] {
        let s = self.offsets[node as usize] as usize;
        let e = self.offsets[node as usize + 1] as usize;
        &self.targets[s..e]
    }

    /// Total edge count.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }
}

/// Shared adjacency arena in internal (traversal-ordered) node space.
///
/// Each node's ∀ and ∃ out-targets live in one contiguous region of a
/// single target vector — `[∀ targets…, ∃ targets…]` — each segment sorted
/// by internal id. A pop therefore relaxes one contiguous, mostly-ascending
/// run of the arena instead of two scattered CSR slices, which is the
/// cache-locality half of the traversal-ordered layout.
#[derive(Debug, Clone, Default)]
pub(crate) struct EdgeArena {
    /// Start of node `i`'s region: `node_off[i]..node_off[i+1]`.
    node_off: Vec<u32>,
    /// End of node `i`'s ∀ segment (start of its ∃ segment).
    forall_end: Vec<u32>,
    /// All targets, internal ids, per-segment ascending.
    targets: Vec<NodeId>,
}

impl EdgeArena {
    /// Packs internal-space ∀/∃ edge lists into one arena, also returning
    /// per-node (∀, ∃) in-degrees.
    pub(crate) fn build(
        node_count: usize,
        forall_edges: &[(NodeId, NodeId)],
        exists_edges: &[(NodeId, NodeId)],
    ) -> (EdgeArena, Vec<u32>, Vec<u32>) {
        let mut fdeg = vec![0u32; node_count];
        let mut edeg = vec![0u32; node_count];
        let mut findeg = vec![0u32; node_count];
        let mut eindeg = vec![0u32; node_count];
        for &(s, t) in forall_edges {
            fdeg[s as usize] += 1;
            findeg[t as usize] += 1;
        }
        for &(s, t) in exists_edges {
            edeg[s as usize] += 1;
            eindeg[t as usize] += 1;
        }
        let mut node_off = vec![0u32; node_count + 1];
        let mut forall_end = vec![0u32; node_count];
        for i in 0..node_count {
            forall_end[i] = node_off[i] + fdeg[i];
            node_off[i + 1] = forall_end[i] + edeg[i];
        }
        let mut targets = vec![0u32; forall_edges.len() + exists_edges.len()];
        let mut fcur: Vec<u32> = (0..node_count).map(|i| node_off[i]).collect();
        for &(s, t) in forall_edges {
            let c = &mut fcur[s as usize];
            targets[*c as usize] = t;
            *c += 1;
        }
        let mut ecur: Vec<u32> = forall_end.clone();
        for &(s, t) in exists_edges {
            let c = &mut ecur[s as usize];
            targets[*c as usize] = t;
            *c += 1;
        }
        for i in 0..node_count {
            targets[node_off[i] as usize..forall_end[i] as usize].sort_unstable();
            targets[forall_end[i] as usize..node_off[i + 1] as usize].sort_unstable();
        }
        (
            EdgeArena {
                node_off,
                forall_end,
                targets,
            },
            findeg,
            eindeg,
        )
    }

    /// ∀ out-targets of internal node `i` (internal ids, ascending).
    #[inline]
    pub(crate) fn forall_out(&self, i: NodeId) -> &[NodeId] {
        &self.targets[self.node_off[i as usize] as usize..self.forall_end[i as usize] as usize]
    }

    /// ∃ out-targets of internal node `i` (internal ids, ascending).
    #[inline]
    pub(crate) fn exists_out(&self, i: NodeId) -> &[NodeId] {
        &self.targets[self.forall_end[i as usize] as usize..self.node_off[i as usize + 1] as usize]
    }

    /// Both segments of internal node `i` at once: `(∀ targets, ∃ targets)`.
    #[inline]
    pub(crate) fn both(&self, i: NodeId) -> (&[NodeId], &[NodeId]) {
        let lo = self.node_off[i as usize] as usize;
        let mid = self.forall_end[i as usize] as usize;
        let hi = self.node_off[i as usize + 1] as usize;
        let region = &self.targets[lo..hi];
        region.split_at(mid - lo)
    }
}

/// One coarse layer: its fine sublayers in order. The layer's member set
/// is the concatenation of the sublayers.
#[derive(Debug, Clone)]
pub struct CoarseLayer {
    /// The fine sublayers, in peeling order.
    pub fine: Vec<Vec<TupleId>>,
}

impl CoarseLayer {
    /// All tuples of the coarse layer (concatenated sublayers).
    pub fn members(&self) -> impl Iterator<Item = TupleId> + '_ {
        self.fine.iter().flatten().copied()
    }

    /// Total tuple count.
    pub fn len(&self) -> usize {
        self.fine.iter().map(|f| f.len()).sum()
    }

    /// Whether the layer is empty (never true for built indexes).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Summary counters describing a built index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IndexStats {
    /// Tuples in the indexed relation.
    pub n: usize,
    /// Attribute dimensionality.
    pub dims: usize,
    /// Number of coarse layers (iterated skylines).
    pub coarse_layers: usize,
    /// Total fine sublayers across all coarse layers.
    pub fine_layers: usize,
    /// ∀-dominance edges materialized.
    pub forall_edges: usize,
    /// ∃-dominance edges materialized.
    pub exists_edges: usize,
    /// Zero-layer pseudo-tuples (0 without a clustered zero layer).
    pub pseudo_tuples: usize,
    /// Initially-free nodes that seed every query's queue.
    pub seeds: usize,
    /// Tuples in the first coarse layer `L¹`.
    pub first_layer_size: usize,
    /// Tuples in the first fine sublayer `L¹¹`.
    pub first_fine_size: usize,
}

/// The dual-resolution layer index (see crate docs).
///
/// Build with [`DualLayerIndex::build`]; query with
/// [`DualLayerIndex::topk`](crate::query). The index owns a copy of the
/// relation so queries can score tuples without external state.
#[derive(Debug, Clone)]
pub struct DualLayerIndex {
    pub(crate) rel: Relation,
    pub(crate) opts: DlOptions,
    pub(crate) layers: Vec<CoarseLayer>,
    /// ∀/∃ adjacency, internal node space (see module docs).
    pub(crate) arena: EdgeArena,
    /// Per-node ∀ in-degree, internal-indexed.
    pub(crate) forall_indeg: Vec<u32>,
    /// Per-node ∃ in-degree, internal-indexed.
    pub(crate) exists_indeg: Vec<u32>,
    /// Reverse ∀ adjacency (internal space), built once so in-neighbor
    /// queries are O(degree) instead of a full edge scan.
    pub(crate) rev_forall: Csr,
    /// Reverse ∃ adjacency (internal space).
    pub(crate) rev_exists: Csr,
    /// Original (public) id → internal id.
    pub(crate) node_perm: Vec<NodeId>,
    /// Internal id → original (public) id.
    pub(crate) node_orig: Vec<NodeId>,
    /// Pseudo-tuple coordinates, row-major (`pseudo_count × dims`), in
    /// *original* pseudo-local order (snapshots serialize this verbatim).
    pub(crate) pseudo: Vec<f64>,
    pub(crate) pseudo_count: usize,
    /// Fine-sublayer grouping of pseudo nodes (original local indices),
    /// used by stats/verification.
    pub(crate) pseudo_fine: Vec<Vec<u32>>,
    pub(crate) zero2d: Option<Zero2d>,
    /// 2-d chain position → internal node id (empty without a 2-d zero
    /// layer).
    pub(crate) chain_internal: Vec<NodeId>,
    /// Internal node id → 2-d chain position (`u32::MAX` for non-chain
    /// nodes; empty without a 2-d zero layer).
    pub(crate) chain_pos_of: Vec<u32>,
    /// Nodes free at query start, internal ids ascending (chain members
    /// excluded in 2-d mode).
    pub(crate) seeds: Vec<NodeId>,
    /// Column-major mirror of all node coordinates in *internal* order, so
    /// the traversal's scoring kernel gathers near-sequential rows.
    pub(crate) columns: Columns,
    pub(crate) stats: IndexStats,
}

impl DualLayerIndex {
    /// Number of real tuples.
    #[inline]
    pub fn len(&self) -> usize {
        self.rel.len()
    }

    /// Whether the indexed relation is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rel.is_empty()
    }

    /// Dimensionality of the indexed relation.
    #[inline]
    pub fn dims(&self) -> usize {
        self.rel.dims()
    }

    /// The indexed relation.
    #[inline]
    pub fn relation(&self) -> &Relation {
        &self.rel
    }

    /// Build options used.
    #[inline]
    pub fn options(&self) -> &DlOptions {
        &self.opts
    }

    /// The coarse layers (with their fine sublayers).
    #[inline]
    pub fn coarse_layers(&self) -> &[CoarseLayer] {
        &self.layers
    }

    /// Summary statistics.
    #[inline]
    pub fn stats(&self) -> IndexStats {
        self.stats
    }

    /// Coordinates of a node (original numbering): a real tuple's
    /// attributes or a pseudo-tuple's min-corner.
    #[inline]
    pub fn node_coords(&self, node: NodeId) -> &[f64] {
        let n = self.rel.len();
        if (node as usize) < n {
            self.rel.tuple(node)
        } else {
            let d = self.rel.dims();
            let p = node as usize - n;
            &self.pseudo[p * d..(p + 1) * d]
        }
    }

    /// Column-major (SoA) view of all node coordinates in *internal*
    /// (traversal) order — row `i` holds the coordinates of internal node
    /// `i`; translate with [`DualLayerIndex::node_original`]. This is the
    /// traversal's scoring-kernel operand.
    #[inline]
    pub fn columns(&self) -> &Columns {
        &self.columns
    }

    /// Whether a node is a real tuple (vs. a zero-layer pseudo-tuple).
    /// Real nodes occupy `0..n` in both the original and the internal
    /// numbering, so this predicate is valid in either space.
    #[inline]
    pub fn is_real(&self, node: NodeId) -> bool {
        (node as usize) < self.rel.len()
    }

    /// Total node count (real tuples plus zero-layer pseudo-tuples) — the
    /// size of the unified node space scratch memory is indexed by.
    #[inline]
    pub(crate) fn total_nodes(&self) -> usize {
        self.rel.len() + self.pseudo_count
    }

    /// The traversal-order permutation: `node_permutation()[orig]` is the
    /// internal id of original node `orig`. Real nodes map to `0..n`,
    /// pseudo nodes to `n..n+p`.
    #[inline]
    pub fn node_permutation(&self) -> &[NodeId] {
        &self.node_perm
    }

    /// The inverse permutation: `node_original()[internal]` is the
    /// original id of internal node `internal`.
    #[inline]
    pub fn node_original(&self) -> &[NodeId] {
        &self.node_orig
    }

    /// The zero layer's pseudo-tuples grouped by fine sublayer (original
    /// local pseudo indices: node id = `len() + local`). Empty without a
    /// clustered zero layer.
    #[inline]
    pub fn pseudo_fine_layers(&self) -> &[Vec<u32>] {
        &self.pseudo_fine
    }

    /// ∀-dominance out-edges of a node, original ids ascending.
    pub fn forall_out(&self, node: NodeId) -> Vec<NodeId> {
        self.translate_sorted(self.arena.forall_out(self.node_perm[node as usize]))
    }

    /// ∃-dominance out-edges of a node, original ids ascending.
    pub fn exists_out(&self, node: NodeId) -> Vec<NodeId> {
        self.translate_sorted(self.arena.exists_out(self.node_perm[node as usize]))
    }

    /// ∀ in-degree of a node.
    #[inline]
    pub fn forall_in_degree(&self, node: NodeId) -> u32 {
        self.forall_indeg[self.node_perm[node as usize] as usize]
    }

    /// ∃ in-degree of a node.
    #[inline]
    pub fn exists_in_degree(&self, node: NodeId) -> u32 {
        self.exists_indeg[self.node_perm[node as usize] as usize]
    }

    /// ∀ in-neighbors of `node`, original ids ascending. O(in-degree) via
    /// the prebuilt reverse CSR.
    pub fn forall_in(&self, node: NodeId) -> Vec<NodeId> {
        self.translate_sorted(self.rev_forall.out(self.node_perm[node as usize]))
    }

    /// ∃ in-neighbors of `node`, original ids ascending. O(in-degree) via
    /// the prebuilt reverse CSR.
    pub fn exists_in(&self, node: NodeId) -> Vec<NodeId> {
        self.translate_sorted(self.rev_exists.out(self.node_perm[node as usize]))
    }

    fn translate_sorted(&self, internal: &[NodeId]) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = internal
            .iter()
            .map(|&i| self.node_orig[i as usize])
            .collect();
        v.sort_unstable();
        v
    }

    /// The 2-d exact zero layer, if built.
    #[inline]
    pub fn zero2d(&self) -> Option<&Zero2d> {
        self.zero2d.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_roundtrip() {
        let mut edges = vec![(0u32, 2u32), (0, 1), (2, 3), (1, 3)];
        let (csr, indeg) = Csr::from_edges(4, &mut edges);
        assert_eq!(csr.out(0), &[2, 1]);
        assert_eq!(csr.out(1), &[3]);
        assert_eq!(csr.out(2), &[3]);
        assert!(csr.out(3).is_empty());
        assert_eq!(indeg, vec![0, 1, 1, 2]);
        assert_eq!(csr.edge_count(), 4);
    }

    #[test]
    fn csr_empty() {
        let (csr, indeg) = Csr::from_edges(3, &mut Vec::new());
        assert_eq!(csr.edge_count(), 0);
        assert_eq!(indeg, vec![0, 0, 0]);
        assert!(csr.out(2).is_empty());
    }

    #[test]
    fn arena_packs_and_sorts_segments() {
        let forall = vec![(0u32, 3u32), (0, 1), (2, 3)];
        let exists = vec![(0u32, 2u32), (1, 3), (0, 1)];
        let (arena, findeg, eindeg) = EdgeArena::build(4, &forall, &exists);
        assert_eq!(arena.forall_out(0), &[1, 3]);
        assert_eq!(arena.exists_out(0), &[1, 2]);
        assert_eq!(arena.both(0), (&[1u32, 3u32][..], &[1u32, 2u32][..]));
        assert_eq!(arena.forall_out(1), &[] as &[u32]);
        assert_eq!(arena.exists_out(1), &[3]);
        assert_eq!(arena.forall_out(2), &[3]);
        assert_eq!(arena.both(3), (&[][..], &[][..]));
        assert_eq!(findeg, vec![0, 1, 0, 2]);
        assert_eq!(eindeg, vec![0, 1, 1, 1]);
    }

    #[test]
    fn arena_empty() {
        let (arena, findeg, eindeg) = EdgeArena::build(2, &[], &[]);
        assert!(arena.forall_out(1).is_empty());
        assert!(arena.exists_out(0).is_empty());
        assert_eq!(findeg, vec![0, 0]);
        assert_eq!(eindeg, vec![0, 0]);
    }
}
