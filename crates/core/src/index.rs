//! The index structure: layers, dominance edges, and pseudo-tuples.

use crate::options::DlOptions;
use crate::zero::Zero2d;
use drtopk_common::{Columns, Relation, TupleId};

/// Node identifier inside the index graph. Values below `n` are real tuple
/// ids; values `n..n+p` address zero-layer pseudo-tuples.
pub type NodeId = u32;

/// Compressed sparse row adjacency over index nodes.
#[derive(Debug, Clone, Default)]
pub struct Csr {
    offsets: Vec<u32>,
    targets: Vec<NodeId>,
}

impl Csr {
    /// Builds a CSR from an edge list, also returning per-node in-degrees.
    pub fn from_edges(node_count: usize, edges: &mut [(NodeId, NodeId)]) -> (Csr, Vec<u32>) {
        let mut offsets = vec![0u32; node_count + 1];
        let mut indeg = vec![0u32; node_count];
        for &(s, t) in edges.iter() {
            offsets[s as usize + 1] += 1;
            indeg[t as usize] += 1;
        }
        for i in 0..node_count {
            offsets[i + 1] += offsets[i];
        }
        let mut targets = vec![0u32; edges.len()];
        let mut cursor = offsets.clone();
        for &(s, t) in edges.iter() {
            let c = &mut cursor[s as usize];
            targets[*c as usize] = t;
            *c += 1;
        }
        (Csr { offsets, targets }, indeg)
    }

    /// Out-neighbors of `node`.
    #[inline]
    pub fn out(&self, node: NodeId) -> &[NodeId] {
        let s = self.offsets[node as usize] as usize;
        let e = self.offsets[node as usize + 1] as usize;
        &self.targets[s..e]
    }

    /// Total edge count.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }
}

/// One coarse layer: its fine sublayers in order. The layer's member set
/// is the concatenation of the sublayers.
#[derive(Debug, Clone)]
pub struct CoarseLayer {
    /// The fine sublayers, in peeling order.
    pub fine: Vec<Vec<TupleId>>,
}

impl CoarseLayer {
    /// All tuples of the coarse layer (concatenated sublayers).
    pub fn members(&self) -> impl Iterator<Item = TupleId> + '_ {
        self.fine.iter().flatten().copied()
    }

    /// Total tuple count.
    pub fn len(&self) -> usize {
        self.fine.iter().map(|f| f.len()).sum()
    }

    /// Whether the layer is empty (never true for built indexes).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Summary counters describing a built index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IndexStats {
    /// Tuples in the indexed relation.
    pub n: usize,
    /// Attribute dimensionality.
    pub dims: usize,
    /// Number of coarse layers (iterated skylines).
    pub coarse_layers: usize,
    /// Total fine sublayers across all coarse layers.
    pub fine_layers: usize,
    /// ∀-dominance edges materialized.
    pub forall_edges: usize,
    /// ∃-dominance edges materialized.
    pub exists_edges: usize,
    /// Zero-layer pseudo-tuples (0 without a clustered zero layer).
    pub pseudo_tuples: usize,
    /// Initially-free nodes that seed every query's queue.
    pub seeds: usize,
    /// Tuples in the first coarse layer `L¹`.
    pub first_layer_size: usize,
    /// Tuples in the first fine sublayer `L¹¹`.
    pub first_fine_size: usize,
}

/// The dual-resolution layer index (see crate docs).
///
/// Build with [`DualLayerIndex::build`]; query with
/// [`DualLayerIndex::topk`](crate::query). The index owns a copy of the
/// relation so queries can score tuples without external state.
#[derive(Debug, Clone)]
pub struct DualLayerIndex {
    pub(crate) rel: Relation,
    pub(crate) opts: DlOptions,
    pub(crate) layers: Vec<CoarseLayer>,
    pub(crate) forall: Csr,
    pub(crate) forall_indeg: Vec<u32>,
    pub(crate) exists: Csr,
    pub(crate) exists_indeg: Vec<u32>,
    /// Pseudo-tuple coordinates, row-major (`pseudo_count × dims`).
    pub(crate) pseudo: Vec<f64>,
    pub(crate) pseudo_count: usize,
    /// Fine-sublayer position of each pseudo node (index into
    /// `pseudo_fine`), used by stats/verification.
    pub(crate) pseudo_fine: Vec<Vec<u32>>,
    pub(crate) zero2d: Option<Zero2d>,
    /// Nodes free at query start (chain members excluded in 2-d mode).
    pub(crate) seeds: Vec<NodeId>,
    /// Column-major mirror of the relation followed by the pseudo-tuples
    /// (node ids index it directly); the traversal's scoring kernel.
    pub(crate) columns: Columns,
    pub(crate) stats: IndexStats,
}

impl DualLayerIndex {
    /// Number of real tuples.
    #[inline]
    pub fn len(&self) -> usize {
        self.rel.len()
    }

    /// Whether the indexed relation is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rel.is_empty()
    }

    /// Dimensionality of the indexed relation.
    #[inline]
    pub fn dims(&self) -> usize {
        self.rel.dims()
    }

    /// The indexed relation.
    #[inline]
    pub fn relation(&self) -> &Relation {
        &self.rel
    }

    /// Build options used.
    #[inline]
    pub fn options(&self) -> &DlOptions {
        &self.opts
    }

    /// The coarse layers (with their fine sublayers).
    #[inline]
    pub fn coarse_layers(&self) -> &[CoarseLayer] {
        &self.layers
    }

    /// Summary statistics.
    #[inline]
    pub fn stats(&self) -> IndexStats {
        self.stats
    }

    /// Coordinates of a node: a real tuple's attributes or a pseudo-tuple's
    /// min-corner.
    #[inline]
    pub fn node_coords(&self, node: NodeId) -> &[f64] {
        let n = self.rel.len();
        if (node as usize) < n {
            self.rel.tuple(node)
        } else {
            let d = self.rel.dims();
            let p = node as usize - n;
            &self.pseudo[p * d..(p + 1) * d]
        }
    }

    /// Column-major (SoA) view of all node coordinates — real tuples at
    /// `0..n`, pseudo-tuples at `n..n+p` — used by the batch scoring kernel.
    #[inline]
    pub fn columns(&self) -> &Columns {
        &self.columns
    }

    /// Whether a node is a real tuple (vs. a zero-layer pseudo-tuple).
    #[inline]
    pub fn is_real(&self, node: NodeId) -> bool {
        (node as usize) < self.rel.len()
    }

    /// The zero layer's pseudo-tuples grouped by fine sublayer (local
    /// pseudo indices: node id = `len() + local`). Empty without a
    /// clustered zero layer.
    #[inline]
    pub fn pseudo_fine_layers(&self) -> &[Vec<u32>] {
        &self.pseudo_fine
    }

    /// ∀-dominance out-edges of a node.
    #[inline]
    pub fn forall_out(&self, node: NodeId) -> &[NodeId] {
        self.forall.out(node)
    }

    /// ∃-dominance out-edges of a node.
    #[inline]
    pub fn exists_out(&self, node: NodeId) -> &[NodeId] {
        self.exists.out(node)
    }

    /// ∀ in-degree of a node.
    #[inline]
    pub fn forall_in_degree(&self, node: NodeId) -> u32 {
        self.forall_indeg[node as usize]
    }

    /// ∃ in-degree of a node.
    #[inline]
    pub fn exists_in_degree(&self, node: NodeId) -> u32 {
        self.exists_indeg[node as usize]
    }

    /// ∀ in-neighbors of `node` (linear scan; intended for tests and
    /// debugging, not the query path).
    pub fn forall_in(&self, node: NodeId) -> Vec<NodeId> {
        self.scan_in(&self.forall, node)
    }

    /// ∃ in-neighbors of `node` (linear scan; tests/debugging only).
    pub fn exists_in(&self, node: NodeId) -> Vec<NodeId> {
        self.scan_in(&self.exists, node)
    }

    fn scan_in(&self, csr: &Csr, node: NodeId) -> Vec<NodeId> {
        let total = self.rel.len() + self.pseudo_count;
        let mut v = Vec::new();
        for s in 0..total as NodeId {
            if csr.out(s).contains(&node) {
                v.push(s);
            }
        }
        v
    }

    /// The 2-d exact zero layer, if built.
    #[inline]
    pub fn zero2d(&self) -> Option<&Zero2d> {
        self.zero2d.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_roundtrip() {
        let mut edges = vec![(0u32, 2u32), (0, 1), (2, 3), (1, 3)];
        let (csr, indeg) = Csr::from_edges(4, &mut edges);
        assert_eq!(csr.out(0), &[2, 1]);
        assert_eq!(csr.out(1), &[3]);
        assert_eq!(csr.out(2), &[3]);
        assert!(csr.out(3).is_empty());
        assert_eq!(indeg, vec![0, 1, 1, 2]);
        assert_eq!(csr.edge_count(), 4);
    }

    #[test]
    fn csr_empty() {
        let (csr, indeg) = Csr::from_edges(3, &mut Vec::new());
        assert_eq!(csr.edge_count(), 0);
        assert_eq!(indeg, vec![0, 0, 0]);
        assert!(csr.out(2).is_empty());
    }
}
