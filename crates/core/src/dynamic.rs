//! Dynamic maintenance on top of the (static) dual-resolution index.
//!
//! The paper's index, like Onion and DG, is built once over a frozen
//! relation. Real deployments need inserts and deletes without paying the
//! full rebuild (Table IV) per update. [`DynamicIndex`] follows the
//! classic log-structured pattern:
//!
//! * inserts land in a small unindexed *buffer*, scanned linearly at query
//!   time and merged with the index's answers;
//! * deletes are *tombstones*; the traversal over-fetches to compensate;
//! * once the buffer or tombstone set outgrows `rebuild_threshold`
//!   (a fraction of the indexed size), the index is rebuilt from the live
//!   tuple set.
//!
//! Answers are always exact: differential tests pin them against a
//! brute-force oracle over the live multiset. Ids returned are *handles*
//! (stable across rebuilds), not positions in the current index.

use crate::cache::{CacheLookup, ResultCache};
use crate::index::DualLayerIndex;
use crate::options::DlOptions;
use crate::query::{QueryBudget, TopkResult, TruncateReason};
use crate::snapshot::IndexSnapshot;
use drtopk_common::{Cost, Error, Relation, Weights};
use std::collections::HashSet;
use std::sync::Arc;

/// A stable handle to a tuple inserted into a [`DynamicIndex`].
pub type Handle = u64;

/// An updatable top-k index: a static [`DualLayerIndex`] plus an insert
/// buffer and tombstones.
#[derive(Debug)]
pub struct DynamicIndex {
    opts: DlOptions,
    index: DualLayerIndex,
    /// Handle of each tuple position in the indexed relation.
    indexed_handles: Vec<Handle>,
    /// Buffered (handle, row) inserts, not yet indexed.
    buffer: Vec<(Handle, Vec<f64>)>,
    /// Deleted handles (both indexed and buffered).
    tombstones: HashSet<Handle>,
    next_handle: Handle,
    /// Rebuild when `buffer + tombstones > threshold_num / threshold_den ×
    /// indexed size` (and at least `MIN_REBUILD` pending updates).
    rebuild_fraction: f64,
    rebuilds: usize,
    /// Optional weight-space result cache, invalidated by every mutation.
    cache: Option<Arc<ResultCache>>,
}

impl Clone for DynamicIndex {
    /// Clones the index *without* the attached cache: a shared cache would
    /// let one clone serve answers filled by the other after their live
    /// sets diverge. Re-attach a cache to the clone if it needs one.
    fn clone(&self) -> Self {
        DynamicIndex {
            opts: self.opts.clone(),
            index: self.index.clone(),
            indexed_handles: self.indexed_handles.clone(),
            buffer: self.buffer.clone(),
            tombstones: self.tombstones.clone(),
            next_handle: self.next_handle,
            rebuild_fraction: self.rebuild_fraction,
            rebuilds: self.rebuilds,
            cache: None,
        }
    }
}

const MIN_REBUILD: usize = 64;

/// Flat, public capture of a [`DynamicIndex`]'s full state, for
/// persistence. A state plus a replayed operation log reconstructs an
/// index whose answers are bit-identical to the original's: the static
/// part round-trips through [`IndexSnapshot`], and the dynamic part
/// (buffer, tombstones, handle map) is carried verbatim.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicState {
    /// Snapshot of the static index over the indexed tuples.
    pub index: IndexSnapshot,
    /// Handle of each tuple position in the indexed relation (strictly
    /// ascending).
    pub indexed_handles: Vec<Handle>,
    /// Buffered `(handle, row)` inserts not yet indexed.
    pub buffer: Vec<(Handle, Vec<f64>)>,
    /// Deleted handles, sorted ascending.
    pub tombstones: Vec<Handle>,
    /// The next handle to assign.
    pub next_handle: Handle,
}

/// Result of one budget-guarded top-k query over a [`DynamicIndex`]:
/// the same true-prefix contract as [`crate::query::GuardedTopk`], with
/// stable handles for ids.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicGuardedTopk {
    /// Answer prefix, ascending by `(score, handle)`. When `truncated` is
    /// `None` this is the full top-k; otherwise it is the exact top-m for
    /// some m ≤ k.
    pub ids: Vec<Handle>,
    /// Tuples scored before the query stopped (Definition 9).
    pub cost: Cost,
    /// `None` when the query completed; otherwise the tripped limit.
    pub truncated: Option<TruncateReason>,
}

impl DynamicIndex {
    /// Builds over an initial relation. `rebuild_fraction` is the pending-
    /// update fraction that triggers a rebuild (e.g. 0.2).
    pub fn new(rel: &Relation, opts: DlOptions, rebuild_fraction: f64) -> Self {
        let index = DualLayerIndex::build(rel, opts.clone());
        DynamicIndex {
            opts,
            indexed_handles: (0..rel.len() as Handle).collect(),
            next_handle: rel.len() as Handle,
            index,
            buffer: Vec::new(),
            tombstones: HashSet::new(),
            rebuild_fraction: rebuild_fraction.clamp(0.01, 10.0),
            rebuilds: 0,
            cache: None,
        }
    }

    /// Builds over a relation whose tuples carry *caller-assigned* handles
    /// (strictly ascending, one per tuple). This is how a shard of a
    /// partitioned relation keeps global tuple ids: shard `s` of `P` holds
    /// the tuples whose global handle `h` satisfies `h % P == s`, and its
    /// answers come back as global handles — so a k-way merge across
    /// shards is directly comparable to the unsharded index's answers.
    ///
    /// `next_handle` starts one past the largest given handle, so replayed
    /// inserts (which also carry global handles) keep their discipline.
    pub fn with_handles(
        rel: &Relation,
        handles: Vec<Handle>,
        opts: DlOptions,
        rebuild_fraction: f64,
    ) -> Result<Self, Error> {
        if handles.len() != rel.len() {
            return Err(Error::Invalid(format!(
                "{} handles for {} tuples",
                handles.len(),
                rel.len()
            )));
        }
        if handles.windows(2).any(|w| w[0] >= w[1]) {
            return Err(Error::Invalid(
                "shard handles must be strictly ascending".into(),
            ));
        }
        let next_handle = handles.last().map_or(0, |&h| h + 1);
        let index = DualLayerIndex::build(rel, opts.clone());
        Ok(DynamicIndex {
            opts,
            indexed_handles: handles,
            next_handle,
            index,
            buffer: Vec::new(),
            tombstones: HashSet::new(),
            rebuild_fraction: rebuild_fraction.clamp(0.01, 10.0),
            rebuilds: 0,
            cache: None,
        })
    }

    /// Attribute dimensionality of the indexed relation.
    pub fn dims(&self) -> usize {
        self.index.dims()
    }

    /// Attaches a weight-space result cache to the query path. The cache
    /// is invalidated on attachment (it may hold entries from an earlier
    /// life) and by every subsequent mutation; one cache must serve
    /// exactly one logical index.
    pub fn attach_cache(&mut self, cache: Arc<ResultCache>) {
        cache.invalidate_all();
        self.cache = Some(cache);
    }

    /// Detaches and returns the cache, if one was attached.
    pub fn detach_cache(&mut self) -> Option<Arc<ResultCache>> {
        self.cache.take()
    }

    /// The attached cache, if any.
    pub fn cache(&self) -> Option<&Arc<ResultCache>> {
        self.cache.as_ref()
    }

    /// Invalidates the attached cache (every mutation calls this).
    fn touch_cache(&self) {
        if let Some(c) = &self.cache {
            c.invalidate_all();
        }
    }

    /// Number of live tuples.
    pub fn len(&self) -> usize {
        self.indexed_handles.len() + self.buffer.len() - self.tombstones.len()
    }

    /// Whether no live tuples remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many rebuilds have happened.
    pub fn rebuilds(&self) -> usize {
        self.rebuilds
    }

    /// Pending (unindexed or tombstoned) update count.
    pub fn pending(&self) -> usize {
        self.buffer.len() + self.tombstones.len()
    }

    /// The attribute values of a live handle, if present.
    pub fn get(&self, h: Handle) -> Option<&[f64]> {
        if self.tombstones.contains(&h) {
            return None;
        }
        if let Ok(pos) = self.indexed_handles.binary_search(&h) {
            return Some(self.index.relation().tuple(pos as u32));
        }
        self.buffer
            .iter()
            .find(|(bh, _)| *bh == h)
            .map(|(_, row)| row.as_slice())
    }

    /// Validates a candidate row without mutating anything — the check
    /// [`DynamicIndex::insert`] applies, exposed so write-ahead-logging
    /// callers can validate *before* logging and never log a rejected row.
    pub fn check_row(&self, row: &[f64]) -> Result<(), Error> {
        if row.len() != self.index.dims() {
            return Err(Error::DimensionMismatch {
                expected: self.index.dims(),
                got: row.len(),
            });
        }
        for (i, &v) in row.iter().enumerate() {
            if !v.is_finite() || !(0.0..=1.0).contains(&v) {
                return Err(Error::InvalidValue {
                    tuple: self.buffer.len(),
                    dim: i,
                    value: v,
                });
            }
        }
        Ok(())
    }

    /// The handle the next successful [`DynamicIndex::insert`] will
    /// return. Write-ahead-logging callers log this handle before
    /// applying the insert.
    pub fn next_handle(&self) -> Handle {
        self.next_handle
    }

    /// Inserts a tuple, returning its stable handle.
    pub fn insert(&mut self, row: &[f64]) -> Result<Handle, Error> {
        self.check_row(row)?;
        let h = self.next_handle;
        self.next_handle += 1;
        self.buffer.push((h, row.to_vec()));
        drtopk_obs::metrics().dynamic_insert();
        self.touch_cache();
        self.maybe_rebuild();
        Ok(h)
    }

    /// Replays a logged insert with its original handle (recovery path).
    ///
    /// Handles must arrive in the order they were assigned: `h` may not be
    /// below `next_handle` (that would collide with a live or tombstoned
    /// handle). Gaps are allowed — a log may skip handles whose insert was
    /// never acknowledged.
    pub fn replay_insert(&mut self, h: Handle, row: &[f64]) -> Result<(), Error> {
        if h < self.next_handle {
            return Err(Error::Invalid(format!(
                "replayed insert handle {h} below next handle {}",
                self.next_handle
            )));
        }
        self.check_row(row)?;
        self.next_handle = h + 1;
        self.buffer.push((h, row.to_vec()));
        drtopk_obs::metrics().dynamic_insert();
        self.touch_cache();
        self.maybe_rebuild();
        Ok(())
    }

    /// Deletes a handle; returns whether it was live.
    pub fn delete(&mut self, h: Handle) -> bool {
        if self.get(h).is_none() {
            return false;
        }
        self.tombstones.insert(h);
        drtopk_obs::metrics().dynamic_delete();
        self.touch_cache();
        self.maybe_rebuild();
        true
    }

    /// Answers a top-k query over the live tuples; returns stable handles.
    ///
    /// With a cache attached, hits return the same handles with the
    /// cache's cost semantics (0 on a 2-d cell hit, k rescores on a
    /// certified hit) and misses report the cost of the k+1-fetch the
    /// cache fill requires; answers are bit-identical either way. The
    /// stored (k+1)-th *merged* score is a sound barrier: any unfetched
    /// indexed tuple scores at least the traversal's last fetched answer,
    /// which is at least the merged (k+1)-th.
    pub fn topk(&self, w: &Weights, k: usize) -> (Vec<Handle>, Cost) {
        let k_eff = k.min(self.len());
        let mut cost = Cost::new();
        if k_eff == 0 {
            return (Vec::new(), cost);
        }
        let cache = self.cache.as_deref().filter(|c| k_eff <= c.config().max_k);
        let mut fill = None;
        if let Some(c) = cache {
            let key = c.key_for_parts(self.index.dims(), self.index.zero2d(), w, k_eff as u32);
            let generation = c.generation();
            match c.lookup_raw(&key, w, self.index.dims(), generation) {
                CacheLookup::Hit2d(ids) => return (ids, Cost::new()),
                CacheLookup::HitCertified(ids, evals) => {
                    return (
                        ids,
                        Cost {
                            evaluated: evals,
                            pseudo_evaluated: 0,
                        },
                    )
                }
                CacheLookup::Miss => fill = Some((key, generation)),
            }
        }
        // On a cache fill, fetch one extra answer: it is the new entry's
        // barrier (the score no outside tuple can beat).
        let want = if fill.is_some() {
            (k_eff + 1).min(self.len())
        } else {
            k_eff
        };
        // Over-fetch from the index to absorb tombstoned answers. Deleted
        // indexed tuples are at most `tombstones` many.
        let fetch = want + self.tombstones.len();
        let TopkResult { ids, cost: c } = self.index.topk(w, fetch);
        cost.merge(&c);
        let mut merged: Vec<(f64, Handle)> = Vec::with_capacity(ids.len() + self.buffer.len());
        for t in ids {
            let h = self.indexed_handles[t as usize];
            if !self.tombstones.contains(&h) {
                merged.push((w.score(self.index.relation().tuple(t)), h));
            }
        }
        drtopk_obs::metrics().dynamic_buffer_scan(self.buffer.len() as u64);
        for (h, row) in &self.buffer {
            if !self.tombstones.contains(h) {
                cost.tick();
                merged.push((w.score(row), *h));
            }
        }
        merged.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        if let (Some((key, generation)), Some(c)) = (fill, cache) {
            let barrier = if merged.len() > k_eff {
                merged[k_eff].0
            } else {
                f64::INFINITY
            };
            let ids: Vec<u64> = merged[..k_eff.min(merged.len())]
                .iter()
                .map(|&(_, h)| h)
                .collect();
            let dims = self.index.dims();
            let mut coords = Vec::with_capacity(ids.len() * dims);
            for &h in &ids {
                coords.extend_from_slice(self.get(h).expect("answer handle is live"));
            }
            c.store_raw(key, generation, w.as_slice(), ids, coords, barrier);
        }
        merged.truncate(k_eff);
        (merged.into_iter().map(|(_, h)| h).collect(), cost)
    }

    /// Budget-guarded top-k over the live tuples, with the true-prefix
    /// partial-result contract of [`DualLayerIndex::topk_guarded`].
    ///
    /// When the static traversal trips the budget after fetching its exact
    /// top-m, the last fetched static entry `(S, h_m)` is a sound barrier:
    /// the traversal's prefix property guarantees every *unfetched* indexed
    /// tuple orders strictly after `(S, h_m)` under `(score, handle)`, so
    /// merged entries at or below that threshold are exactly the true
    /// combined prefix over index + buffer. Entries past the barrier are
    /// discarded rather than returned speculatively.
    ///
    /// With a cache attached the guarded path probes it (hits bypass the
    /// traversal entirely) but never fills it: a truncated answer must not
    /// poison the cache, and the fill's k+1 over-fetch is a cost the
    /// budgeted path should not pay.
    pub fn topk_guarded(&self, w: &Weights, k: usize, budget: &QueryBudget) -> DynamicGuardedTopk {
        if budget.is_unlimited() {
            let (ids, cost) = self.topk(w, k);
            return DynamicGuardedTopk {
                ids,
                cost,
                truncated: None,
            };
        }
        let k_eff = k.min(self.len());
        let mut cost = Cost::new();
        if k_eff == 0 {
            return DynamicGuardedTopk {
                ids: Vec::new(),
                cost,
                truncated: None,
            };
        }
        if let Some(c) = self.cache.as_deref().filter(|c| k_eff <= c.config().max_k) {
            let key = c.key_for_parts(self.index.dims(), self.index.zero2d(), w, k_eff as u32);
            let generation = c.generation();
            match c.lookup_raw(&key, w, self.index.dims(), generation) {
                CacheLookup::Hit2d(ids) => {
                    return DynamicGuardedTopk {
                        ids,
                        cost: Cost::new(),
                        truncated: None,
                    }
                }
                CacheLookup::HitCertified(ids, evals) => {
                    return DynamicGuardedTopk {
                        ids,
                        cost: Cost {
                            evaluated: evals,
                            pseudo_evaluated: 0,
                        },
                        truncated: None,
                    }
                }
                CacheLookup::Miss => {}
            }
        }
        let fetch = k_eff + self.tombstones.len();
        let guarded = self.index.topk_guarded(w, fetch, budget);
        cost.merge(&guarded.cost);
        let truncated_static = guarded.truncated;
        // Barrier: the last *raw* fetched static entry (tombstoned or not)
        // bounds everything the traversal did not fetch.
        let barrier = if truncated_static.is_some() {
            guarded.ids.last().map(|&t| {
                (
                    w.score(self.index.relation().tuple(t)),
                    self.indexed_handles[t as usize],
                )
            })
        } else {
            None
        };
        if truncated_static.is_some() && barrier.is_none() && !self.indexed_handles.is_empty() {
            // Truncated before fetching anything: no sound prefix exists.
            return DynamicGuardedTopk {
                ids: Vec::new(),
                cost,
                truncated: truncated_static,
            };
        }
        let mut merged: Vec<(f64, Handle)> =
            Vec::with_capacity(guarded.ids.len() + self.buffer.len());
        for t in guarded.ids {
            let h = self.indexed_handles[t as usize];
            if !self.tombstones.contains(&h) {
                merged.push((w.score(self.index.relation().tuple(t)), h));
            }
        }
        drtopk_obs::metrics().dynamic_buffer_scan(self.buffer.len() as u64);
        for (h, row) in &self.buffer {
            if !self.tombstones.contains(h) {
                cost.tick();
                merged.push((w.score(row), *h));
            }
        }
        merged.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        if let Some((bs, bh)) = barrier {
            merged.retain(|&(s, h)| s < bs || (s == bs && h <= bh));
        }
        merged.truncate(k_eff);
        // A truncated traversal can still leave a complete answer when the
        // sound prefix reaches k: report it as complete.
        let truncated = if merged.len() == k_eff {
            None
        } else {
            truncated_static
        };
        DynamicGuardedTopk {
            ids: merged.into_iter().map(|(_, h)| h).collect(),
            cost,
            truncated,
        }
    }

    /// Forces a rebuild now (compacts buffer and tombstones).
    pub fn compact(&mut self) {
        if self.pending() == 0 {
            return;
        }
        let dims = self.index.dims();
        let mut handles = Vec::with_capacity(self.len());
        let mut flat = Vec::with_capacity(self.len() * dims);
        for (pos, &h) in self.indexed_handles.iter().enumerate() {
            if !self.tombstones.contains(&h) {
                handles.push(h);
                flat.extend_from_slice(self.index.relation().tuple(pos as u32));
            }
        }
        for (h, row) in &self.buffer {
            if !self.tombstones.contains(h) {
                handles.push(*h);
                flat.extend_from_slice(row);
            }
        }
        // Keep handles sorted so `get` can binary-search.
        let mut order: Vec<usize> = (0..handles.len()).collect();
        order.sort_unstable_by_key(|&i| handles[i]);
        let mut sorted_flat = Vec::with_capacity(flat.len());
        let mut sorted_handles = Vec::with_capacity(handles.len());
        for &i in &order {
            sorted_handles.push(handles[i]);
            sorted_flat.extend_from_slice(&flat[i * dims..(i + 1) * dims]);
        }
        let rel = Relation::from_flat_unchecked(dims, sorted_flat);
        self.index = DualLayerIndex::build(&rel, self.opts.clone());
        self.indexed_handles = sorted_handles;
        self.buffer.clear();
        self.tombstones.clear();
        self.rebuilds += 1;
        drtopk_obs::metrics().dynamic_rebuild();
        self.touch_cache();
    }

    /// Captures the full state for persistence. Reconstructing via
    /// [`DynamicIndex::from_state`] yields an index whose answers are
    /// bit-identical to this one's.
    pub fn to_state(&self) -> DynamicState {
        let mut tombstones: Vec<Handle> = self.tombstones.iter().copied().collect();
        tombstones.sort_unstable();
        DynamicState {
            index: self.index.to_snapshot(),
            indexed_handles: self.indexed_handles.clone(),
            buffer: self.buffer.clone(),
            tombstones,
            next_handle: self.next_handle,
        }
    }

    /// Reconstructs an index from a persisted state.
    ///
    /// Beyond the structural checks [`DualLayerIndex::from_snapshot`]
    /// performs, this validates the dynamic bookkeeping: the handle map
    /// covers the indexed relation, handles are unique, buffered rows are
    /// well-formed, and `next_handle` is above every recorded handle. The
    /// snapshot must also be compatible with `opts` (see
    /// [`IndexSnapshot::check_compatible`]).
    pub fn from_state(
        state: &DynamicState,
        opts: DlOptions,
        rebuild_fraction: f64,
    ) -> Result<Self, Error> {
        state.index.check_compatible(&opts, None)?;
        let index = DualLayerIndex::from_snapshot(&state.index)?;
        if state.indexed_handles.len() != index.len() {
            return Err(Error::Invalid(format!(
                "handle map covers {} tuples but the index holds {}",
                state.indexed_handles.len(),
                index.len()
            )));
        }
        if state.indexed_handles.windows(2).any(|w| w[0] >= w[1]) {
            return Err(Error::Invalid(
                "indexed handles must be strictly ascending".into(),
            ));
        }
        let mut seen: HashSet<Handle> = state.indexed_handles.iter().copied().collect();
        let dims = index.dims();
        for (i, (h, row)) in state.buffer.iter().enumerate() {
            if !seen.insert(*h) {
                return Err(Error::Invalid(format!(
                    "buffered handle {h} duplicates an earlier handle"
                )));
            }
            if row.len() != dims {
                return Err(Error::DimensionMismatch {
                    expected: dims,
                    got: row.len(),
                });
            }
            for (d, &v) in row.iter().enumerate() {
                if !v.is_finite() || !(0.0..=1.0).contains(&v) {
                    return Err(Error::InvalidValue {
                        tuple: i,
                        dim: d,
                        value: v,
                    });
                }
            }
        }
        let max_handle = seen.iter().copied().max();
        if let Some(m) = max_handle {
            if state.next_handle <= m {
                return Err(Error::Invalid(format!(
                    "next handle {} not above max recorded handle {m}",
                    state.next_handle
                )));
            }
        }
        for &t in &state.tombstones {
            if t >= state.next_handle {
                return Err(Error::Invalid(format!(
                    "tombstone {t} at or above next handle {}",
                    state.next_handle
                )));
            }
        }
        Ok(DynamicIndex {
            opts,
            index,
            indexed_handles: state.indexed_handles.clone(),
            buffer: state.buffer.clone(),
            tombstones: state.tombstones.iter().copied().collect(),
            next_handle: state.next_handle,
            rebuild_fraction: rebuild_fraction.clamp(0.01, 10.0),
            rebuilds: 0,
            cache: None,
        })
    }

    fn maybe_rebuild(&mut self) {
        let pending = self.pending();
        if pending >= MIN_REBUILD
            && pending as f64 > self.rebuild_fraction * self.indexed_handles.len().max(1) as f64
        {
            self.compact();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drtopk_common::{Distribution, WorkloadSpec};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::HashMap;

    /// Oracle: a plain map of live handles -> rows.
    struct Oracle {
        live: HashMap<Handle, Vec<f64>>,
    }

    impl Oracle {
        fn topk(&self, w: &Weights, k: usize) -> Vec<Handle> {
            let mut v: Vec<(f64, Handle)> = self
                .live
                .iter()
                .map(|(&h, row)| (w.score(row), h))
                .collect();
            v.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
            v.truncate(k);
            v.into_iter().map(|(_, h)| h).collect()
        }
    }

    #[test]
    fn mixed_workload_matches_oracle() {
        let d = 3;
        let rel = WorkloadSpec::new(Distribution::Independent, d, 200, 5).generate();
        let mut dynamic = DynamicIndex::new(&rel, DlOptions::dl_plus(), 0.3);
        let mut oracle = Oracle {
            live: rel
                .iter()
                .map(|(t, row)| (t as Handle, row.to_vec()))
                .collect(),
        };
        let mut rng = StdRng::seed_from_u64(31);
        let mut known: Vec<Handle> = oracle.live.keys().copied().collect();
        for step in 0..400 {
            let r: f64 = rng.gen();
            if r < 0.5 {
                let row: Vec<f64> = (0..d).map(|_| rng.gen_range(0.001..0.999)).collect();
                let h = dynamic.insert(&row).unwrap();
                oracle.live.insert(h, row);
                known.push(h);
            } else if r < 0.75 && !known.is_empty() {
                let h = known[rng.gen_range(0..known.len())];
                let was_live = oracle.live.remove(&h).is_some();
                assert_eq!(dynamic.delete(h), was_live, "delete({h}) at step {step}");
            } else {
                let k = rng.gen_range(1..=15);
                let w = Weights::random(d, &mut rng);
                let (got, _) = dynamic.topk(&w, k);
                assert_eq!(got, oracle.topk(&w, k), "step {step} k={k}");
            }
            assert_eq!(dynamic.len(), oracle.live.len(), "len at step {step}");
        }
        assert!(dynamic.rebuilds() >= 1, "workload must trigger rebuilds");
    }

    #[test]
    fn get_and_handle_stability() {
        let rel = WorkloadSpec::new(Distribution::Independent, 2, 100, 2).generate();
        let mut dynamic = DynamicIndex::new(&rel, DlOptions::dl(), 0.2);
        let row = vec![0.25, 0.75];
        let h = dynamic.insert(&row).unwrap();
        assert_eq!(dynamic.get(h), Some(row.as_slice()));
        dynamic.compact();
        assert_eq!(
            dynamic.get(h),
            Some(row.as_slice()),
            "handles survive rebuilds"
        );
        assert!(dynamic.delete(h));
        assert_eq!(dynamic.get(h), None);
        assert!(!dynamic.delete(h), "double delete is a no-op");
    }

    #[test]
    fn rejects_bad_inserts() {
        let rel = WorkloadSpec::new(Distribution::Independent, 2, 10, 1).generate();
        let mut dynamic = DynamicIndex::new(&rel, DlOptions::dl(), 0.2);
        assert!(dynamic.insert(&[0.5]).is_err());
        assert!(dynamic.insert(&[0.5, 1.5]).is_err());
        assert!(dynamic.insert(&[0.5, f64::NAN]).is_err());
    }

    #[test]
    fn state_roundtrip_is_bit_identical() {
        let d = 3;
        let rel = WorkloadSpec::new(Distribution::AntiCorrelated, d, 150, 9).generate();
        let mut dynamic = DynamicIndex::new(&rel, DlOptions::dl_plus(), 0.5);
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..40 {
            let row: Vec<f64> = (0..d).map(|_| rng.gen_range(0.001..0.999)).collect();
            dynamic.insert(&row).unwrap();
        }
        for h in [3u64, 17, 42, 151, 160] {
            dynamic.delete(h);
        }
        let state = dynamic.to_state();
        let back = DynamicIndex::from_state(&state, DlOptions::dl_plus(), 0.5).unwrap();
        assert_eq!(back.len(), dynamic.len());
        assert_eq!(back.next_handle(), dynamic.next_handle());
        for _ in 0..20 {
            let w = Weights::random(d, &mut rng);
            let k = rng.gen_range(1..=25);
            let (a, ca) = dynamic.topk(&w, k);
            let (b, cb) = back.topk(&w, k);
            assert_eq!(a, b, "answers must survive the state roundtrip");
            assert_eq!(ca, cb, "costs must survive the state roundtrip");
        }
        // And the state itself round-trips through the restored index.
        assert_eq!(back.to_state(), state);
    }

    #[test]
    fn replay_insert_enforces_handle_discipline() {
        let rel = WorkloadSpec::new(Distribution::Independent, 2, 20, 3).generate();
        let mut dynamic = DynamicIndex::new(&rel, DlOptions::dl(), 5.0);
        assert_eq!(dynamic.next_handle(), 20);
        // Replay with a gap (handle 25 skips 20..25).
        dynamic.replay_insert(25, &[0.1, 0.9]).unwrap();
        assert_eq!(dynamic.next_handle(), 26);
        assert_eq!(dynamic.get(25), Some([0.1, 0.9].as_slice()));
        // A stale handle collides with already-assigned space.
        assert!(matches!(
            dynamic.replay_insert(10, &[0.2, 0.2]),
            Err(Error::Invalid(_))
        ));
        // Invalid rows are rejected before any mutation.
        assert!(dynamic.replay_insert(30, &[2.0, 0.5]).is_err());
        assert_eq!(dynamic.next_handle(), 26);
    }

    #[test]
    fn from_state_rejects_inconsistent_states() {
        let rel = WorkloadSpec::new(Distribution::Independent, 2, 30, 5).generate();
        let mut dynamic = DynamicIndex::new(&rel, DlOptions::dl(), 5.0);
        dynamic.insert(&[0.5, 0.5]).unwrap();
        dynamic.delete(3);
        let state = dynamic.to_state();

        let mut short = state.clone();
        short.indexed_handles.pop();
        assert!(matches!(
            DynamicIndex::from_state(&short, DlOptions::dl(), 0.2),
            Err(Error::Invalid(_))
        ));

        let mut dup = state.clone();
        dup.buffer.push((7, vec![0.1, 0.1]));
        assert!(
            DynamicIndex::from_state(&dup, DlOptions::dl(), 0.2).is_err(),
            "buffered handle shadowing an indexed handle"
        );

        let mut low_next = state.clone();
        low_next.next_handle = 5;
        assert!(matches!(
            DynamicIndex::from_state(&low_next, DlOptions::dl(), 0.2),
            Err(Error::Invalid(_))
        ));

        let mut bad_tomb = state.clone();
        bad_tomb.tombstones.push(state.next_handle + 10);
        assert!(DynamicIndex::from_state(&bad_tomb, DlOptions::dl(), 0.2).is_err());

        let mut bad_row = state.clone();
        bad_row
            .buffer
            .push((state.next_handle - 1 + 1000, vec![0.5]));
        assert!(matches!(
            DynamicIndex::from_state(&bad_row, DlOptions::dl(), 0.2),
            Err(Error::DimensionMismatch { .. }) | Err(Error::Invalid(_))
        ));

        // Options mismatch: the snapshot was built with fine splitting on.
        assert!(matches!(
            DynamicIndex::from_state(&state, DlOptions::dg(), 0.2),
            Err(Error::Invalid(_))
        ));
    }

    #[test]
    fn delete_everything_then_query() {
        let rel = WorkloadSpec::new(Distribution::Independent, 2, 30, 7).generate();
        let mut dynamic = DynamicIndex::new(&rel, DlOptions::dl(), 5.0);
        for h in 0..30u64 {
            assert!(dynamic.delete(h));
        }
        assert!(dynamic.is_empty());
        let w = Weights::uniform(2);
        assert!(dynamic.topk(&w, 5).0.is_empty());
        let h = dynamic.insert(&[0.4, 0.6]).unwrap();
        assert_eq!(dynamic.topk(&w, 5).0, vec![h]);
    }
}
