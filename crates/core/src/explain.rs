//! Query introspection: where did the evaluations go?
//!
//! [`DualLayerIndex::explain`] answers a query while attributing every
//! scored tuple to its coarse layer — the EXPLAIN view of the paper's
//! access-cost story (selective access should concentrate evaluations in
//! the first few layers even when answers reach deeper).

use crate::index::DualLayerIndex;
use crate::query::TopkResult;
use drtopk_common::Weights;

/// Evaluation breakdown of one query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryExplain {
    /// Tuples evaluated per coarse layer (index 0 = L¹).
    pub evaluated_per_layer: Vec<u32>,
    /// Pseudo-tuples evaluated (zero layer).
    pub pseudo_evaluated: u32,
    /// Deepest coarse layer contributing an answer (1-based; 0 if none).
    pub answer_depth: usize,
}

impl QueryExplain {
    /// Renders a compact textual report.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "evaluations per coarse layer (answers reach layer {}):",
            self.answer_depth
        );
        if self.pseudo_evaluated > 0 {
            let _ = writeln!(out, "  L0 (pseudo): {}", self.pseudo_evaluated);
        }
        // Every layer down to the answer depth is reported, zero or not: a
        // skipped line would make "L3: 5" ambiguous between "L2 untouched"
        // and "L2 elided". Deeper layers print only when touched.
        for (i, &c) in self.evaluated_per_layer.iter().enumerate() {
            if c > 0 || i < self.answer_depth {
                let _ = writeln!(out, "  L{}: {}", i + 1, c);
            }
        }
        out
    }
}

impl DualLayerIndex {
    /// Like [`DualLayerIndex::topk`], additionally attributing every
    /// evaluated tuple to its coarse layer.
    pub fn explain(&self, w: &Weights, k: usize) -> (TopkResult, QueryExplain) {
        let n = self.len();
        // Coarse layer of each tuple (small one-off map; explain is a
        // diagnostic API, not the hot path).
        let mut layer_of = vec![0u32; n];
        for (ci, layer) in self.coarse_layers().iter().enumerate() {
            for t in layer.members() {
                layer_of[t as usize] = ci as u32;
            }
        }
        let (result, trace) = self.topk_traced(w, k);
        let mut evaluated_per_layer = vec![0u32; self.coarse_layers().len()];
        let mut pseudo_evaluated = 0u32;
        let mut count = |node: u32| {
            if (node as usize) < n {
                evaluated_per_layer[layer_of[node as usize] as usize] += 1;
            } else {
                pseudo_evaluated += 1;
            }
        };
        // Evaluated set = everything that ever entered the queue: seeds,
        // popped nodes, and nodes still queued at the end.
        let mut seen = vec![false; n + self.stats().pseudo_tuples];
        let mark = |node: u32, seen: &mut [bool], count: &mut dyn FnMut(u32)| {
            if !seen[node as usize] {
                seen[node as usize] = true;
                count(node);
            }
        };
        for &s in &trace.seeds {
            mark(s, &mut seen, &mut count);
        }
        for step in &trace.steps {
            mark(step.popped, &mut seen, &mut count);
            for &q in &step.queue_after {
                mark(q, &mut seen, &mut count);
            }
        }
        let answer_depth = result
            .ids
            .iter()
            .map(|&t| layer_of[t as usize] as usize + 1)
            .max()
            .unwrap_or(0);
        (
            result,
            QueryExplain {
                evaluated_per_layer,
                pseudo_evaluated,
                answer_depth,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::DlOptions;
    use drtopk_common::{Distribution, WorkloadSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn breakdown_sums_to_cost() {
        let rel = WorkloadSpec::new(Distribution::AntiCorrelated, 3, 400, 15).generate();
        let mut rng = StdRng::seed_from_u64(8);
        for opts in [DlOptions::dl(), DlOptions::dl_plus()] {
            let idx = DualLayerIndex::build(&rel, opts);
            for k in [1, 10, 30] {
                let w = Weights::random(3, &mut rng);
                let (res, ex) = idx.explain(&w, k);
                let layered: u64 = ex.evaluated_per_layer.iter().map(|&c| c as u64).sum();
                assert_eq!(layered, res.cost.evaluated, "real evaluations attributed");
                assert_eq!(u64::from(ex.pseudo_evaluated), res.cost.pseudo_evaluated);
                assert!(ex.answer_depth >= 1 && ex.answer_depth <= idx.coarse_layers().len());
                assert_eq!(res.ids, idx.topk(&w, k).ids);
            }
        }
    }

    #[test]
    fn render_lists_untouched_layers_up_to_answer_depth() {
        let ex = QueryExplain {
            evaluated_per_layer: vec![6, 0, 3, 0, 0],
            pseudo_evaluated: 2,
            answer_depth: 4,
        };
        let text = ex.render();
        assert!(text.contains("L0 (pseudo): 2"));
        // L2 saw zero evaluations but sits above the answer depth: it must
        // still be listed, explicitly zero.
        assert!(text.contains("L1: 6"));
        assert!(text.contains("L2: 0"));
        assert!(text.contains("L3: 3"));
        assert!(text.contains("L4: 0"));
        // Layers past the answer depth with no evaluations stay hidden.
        assert!(!text.contains("L5"));
    }

    #[test]
    fn evaluations_concentrate_in_early_layers() {
        let rel = WorkloadSpec::new(Distribution::AntiCorrelated, 4, 800, 3).generate();
        let idx = DualLayerIndex::build(&rel, DlOptions::dl_plus());
        let w = Weights::uniform(4);
        let (_, ex) = idx.explain(&w, 10);
        let total: u32 = ex.evaluated_per_layer.iter().sum();
        let first_three: u32 = ex.evaluated_per_layer.iter().take(3).sum();
        assert!(
            first_three as f64 >= 0.8 * total as f64,
            "selective access should focus on early layers: {:?}",
            ex.evaluated_per_layer
        );
        assert!(!ex.render().is_empty());
    }
}
