//! The dual-resolution layer index (DL / DL+) — the paper's contribution.
//!
//! A [`DualLayerIndex`] pre-materializes a relation into *coarse* layers
//! (iterated skylines) each split into *fine* sublayers (iterated convex
//! skylines), and connects tuples with two kinds of edges:
//!
//! * **∀-dominance** (classic dominance) between adjacent coarse layers —
//!   a tuple is ∀-free once *every* dominator from the previous coarse
//!   layer has been reported (Definition 7);
//! * **∃-dominance** between adjacent fine sublayers, derived from the
//!   facets of each sublayer's convex skyline — a tuple is ∃-free once
//!   *any* member of one of its ∃-dominance sets has been reported
//!   (Definition 8).
//!
//! Top-k queries (Algorithm 2) pop tuples from a score-ordered queue and
//! only ever score tuples that are both ∀-free and ∃-free (Theorem 3),
//! which provably costs no more than the Dominant Graph's coarse-only
//! filtering (Theorem 5).
//!
//! The *zero layer* (Section V) additionally makes access to the very
//! first sublayer selective: exact weight-range partitioning in 2-d,
//! clustered pseudo-tuples with their own fine sublayers in higher
//! dimensions.
//!
//! The same engine expresses the Dominant Graph baselines: DG is a
//! dual-resolution index without fine splitting ([`DlOptions::dg`]), DG+
//! adds a flat zero layer — which is exactly how the paper describes them.
#![warn(missing_docs)]

pub mod analytics;
mod assemble;
pub mod batch;
pub mod build;
pub mod build_reference;
pub mod cache;
pub mod dynamic;
pub mod explain;
pub mod index;
pub mod monotone;
pub mod options;
mod par;
pub mod profile;
pub mod query;
pub mod shard;
pub mod snapshot;
pub mod verify;
pub mod zero;

pub use batch::{BatchExecutor, RequestError};
pub use cache::{CacheConfig, CacheOutcome, CacheStats, CachedTopk, ResultCache};
pub use dynamic::{DynamicGuardedTopk, DynamicIndex, DynamicState, Handle};
pub use explain::QueryExplain;
pub use index::{DualLayerIndex, IndexStats, NodeId};
pub use monotone::{LogSum, MonotoneScore, WeightedChebyshev, WeightedPower};
pub use options::{DlOptions, EdsPolicy, ZeroMode};
pub use profile::{BuildProfile, PhaseProfile};
pub use query::{
    GuardedTopk, QueryBudget, QueryScratch, QueryTrace, TopkCursor, TopkResult, TraceStep,
    TruncateReason,
};
pub use shard::{
    partition_relation, shard_of, ReplicaConfig, ReplicaSet, RetryPolicy, RouterConfig,
    ShardCoverage, ShardError, ShardHealth, ShardProbe, ShardRouter, ShardedTopk, MAX_SHARDS,
};
pub use snapshot::IndexSnapshot;
