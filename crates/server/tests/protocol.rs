//! Wire-format conformance: the spec's worked hex examples pinned
//! against the encoder, and the corruption matrix (truncation at every
//! byte, a bit flip at every position) mirroring the storage crate's
//! torn-tail/bit-rot tests.

use drtopk_server::protocol::{encode_frame, read_frame, Coverage, ErrorCode, Message, WireError};
use drtopk_server::HELLO;

fn hex(s: &str) -> Vec<u8> {
    s.split_whitespace()
        .map(|b| u8::from_str_radix(b, 16).expect("hex byte"))
        .collect()
}

/// PROTOCOL.md §7: the spec's worked examples are the encoder's output,
/// byte for byte. If this test fails, the *document* and the code have
/// diverged — fix whichever one is wrong, deliberately.
#[test]
fn spec_hex_examples_match_the_encoder() {
    // §7.1 QUERY
    let query = encode_frame(
        7,
        &Message::Query {
            deadline_ms: 250,
            max_cost: 0,
            k: 3,
            weights: vec![0.25, 0.75],
        },
    );
    assert_eq!(
        query,
        hex("2b 00 00 00 3f 77 84 64 01 07 00 00 00 00 00 00 \
             00 fa 00 00 00 00 00 00 00 00 00 00 00 03 00 00 \
             00 02 00 00 00 00 00 00 00 d0 3f 00 00 00 00 00 \
             00 e8 3f"),
        "§7.1 QUERY example"
    );

    // §7.2 TOPK
    let topk = encode_frame(
        7,
        &Message::Topk {
            truncated: 0,
            evaluated: 5,
            pseudo_evaluated: 1,
            ids: vec![12, 4, 9],
            coverage: None,
            scores: None,
        },
    );
    assert_eq!(
        topk,
        hex("36 00 00 00 d8 f7 fb 20 81 07 00 00 00 00 00 00 \
             00 00 05 00 00 00 00 00 00 00 01 00 00 00 00 00 \
             00 00 03 00 00 00 0c 00 00 00 00 00 00 00 04 00 \
             00 00 00 00 00 00 09 00 00 00 00 00 00 00"),
        "§7.2 TOPK example"
    );

    // §7.5 TOPK with degraded coverage (flags bit 2: shard 2 of 4 down)
    let degraded = encode_frame(
        7,
        &Message::Topk {
            truncated: 1,
            evaluated: 4,
            pseudo_evaluated: 0,
            ids: vec![12, 4],
            coverage: Some(Coverage {
                shards: 4,
                answered: 0b1011,
            }),
            scores: None,
        },
    );
    assert_eq!(
        degraded,
        hex("38 00 00 00 83 28 b8 5a 81 07 00 00 00 00 00 00 \
             00 05 04 00 00 00 00 00 00 00 00 00 00 00 00 00 \
             00 00 02 00 00 00 0c 00 00 00 00 00 00 00 04 00 \
             00 00 00 00 00 00 04 00 0b 00 00 00 00 00 00 00"),
        "§7.5 degraded TOPK example"
    );

    // §7.3 ERROR
    let error = encode_frame(
        9,
        &Message::Error {
            code: ErrorCode::Overloaded,
            message: "queue full".to_string(),
        },
    );
    assert_eq!(
        error,
        hex("14 00 00 00 b6 17 80 e7 7f 09 00 00 00 00 00 00 \
             00 02 71 75 65 75 65 20 66 75 6c 6c"),
        "§7.3 ERROR example"
    );

    // §7.4 hello
    assert_eq!(HELLO.to_vec(), hex("44 52 54 4f 50 4b 4e 01"));
}

fn sample_frames() -> Vec<Vec<u8>> {
    vec![
        encode_frame(
            7,
            &Message::Query {
                deadline_ms: 250,
                max_cost: 1_000_000,
                k: 3,
                weights: vec![0.25, 0.75],
            },
        ),
        encode_frame(
            u64::MAX,
            &Message::Topk {
                truncated: 2,
                evaluated: 123_456,
                pseudo_evaluated: 78,
                ids: vec![0, u64::from(u32::MAX), 17],
                coverage: None,
                scores: None,
            },
        ),
        encode_frame(
            5,
            &Message::Topk {
                truncated: 0,
                evaluated: 9,
                pseudo_evaluated: 0,
                ids: vec![2, 5],
                coverage: Some(Coverage {
                    shards: 4,
                    answered: 0b1011,
                }),
                scores: None,
            },
        ),
        encode_frame(
            13,
            &Message::ShardQuery {
                deadline_ms: 40,
                max_cost: 900,
                k: 5,
                weights: vec![1.0, 0.5],
            },
        ),
        encode_frame(
            14,
            &Message::Topk {
                truncated: 0,
                evaluated: 9,
                pseudo_evaluated: 0,
                ids: vec![2, 5],
                coverage: None,
                scores: Some(vec![3.5, -0.25]),
            },
        ),
        encode_frame(3, &Message::Ping),
        encode_frame(
            9,
            &Message::Error {
                code: ErrorCode::Overloaded,
                message: "queue full".to_string(),
            },
        ),
        encode_frame(11, &Message::MetricsReply("# HELP a b\na 1\n".to_string())),
    ]
}

/// §2.2 torn tail: a frame cut short at *every* byte boundary must fail
/// to decode — cleanly, never panicking, never yielding a message.
#[test]
fn truncation_at_every_byte_is_detected() {
    for frame in sample_frames() {
        for cut in 0..frame.len() {
            let torn = &frame[..cut];
            match read_frame(&mut &torn[..]) {
                Err(WireError::Io(_)) | Err(WireError::Corrupt(_)) => {}
                other => panic!("cut at {cut}/{} decoded: {other:?}", frame.len()),
            }
        }
        // The untouched frame still decodes (the matrix's control arm).
        read_frame(&mut &frame[..]).expect("intact frame decodes");
    }
}

/// §2.2 bit rot: flipping any single bit anywhere in the frame must be
/// detected — the length bound catches header rot, the CRC catches
/// payload rot. No flip may yield the original message.
#[test]
fn single_bit_flips_never_decode_to_the_original() {
    for frame in sample_frames() {
        let original = read_frame(&mut &frame[..]).expect("intact");
        for byte in 0..frame.len() {
            for bit in 0..8 {
                let mut flipped = frame.clone();
                flipped[byte] ^= 1 << bit;
                match read_frame(&mut &flipped[..]) {
                    Err(_) => {}
                    Ok(decoded) => {
                        // A flip in the length prefix can only shrink the
                        // frame into an earlier-terminating one; it must
                        // never round-trip to the original message.
                        assert_ne!(
                            decoded, original,
                            "flip at byte {byte} bit {bit} went undetected"
                        );
                        panic!(
                            "flip at byte {byte} bit {bit} decoded to {decoded:?} (CRC must catch payload rot)"
                        );
                    }
                }
            }
        }
    }
}
