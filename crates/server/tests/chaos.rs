//! Chaos: an armed accept-path failpoint must degrade to a graceful
//! connection-scoped ERROR frame (`PROTOCOL.md` §5.2), never a hang or a
//! silent close. Run with `--features failpoints`.
#![cfg(feature = "failpoints")]

use drtopk_common::{Distribution, WorkloadSpec};
use drtopk_core::{DlOptions, DualLayerIndex};
use drtopk_failpoints::FailAction;
use drtopk_server::{Client, ClientError, ErrorCode, Server, ServerConfig, ACCEPT_FAILPOINT};
use std::sync::Arc;

#[test]
fn armed_accept_path_degrades_to_a_graceful_error_reply() {
    let rel = WorkloadSpec::new(Distribution::Independent, 2, 150, 1).generate();
    let idx = Arc::new(DualLayerIndex::build(&rel, DlOptions::dl_plus()));
    let handle = Server::start(Arc::clone(&idx), ServerConfig::new()).expect("start");

    drtopk_failpoints::reset();
    drtopk_failpoints::arm(ACCEPT_FAILPOINT, 0, FailAction::Error);

    // The poisoned connection completes the hello (so framing exists to
    // carry the error) and then receives a connection-scoped ERROR.
    let mut poisoned = Client::connect(handle.addr()).expect("hello still exchanges");
    match poisoned.query(&[0.5, 0.5], 5, 0, 0) {
        Err(ClientError::Server { code, message }) => {
            assert_eq!(code, ErrorCode::Internal);
            assert!(message.contains(ACCEPT_FAILPOINT), "{message}");
        }
        // The server may close before our frame is read; an I/O error is
        // also a graceful (non-hanging) outcome — but only after the
        // ERROR frame was sent, which recv() would have surfaced first.
        other => panic!("want Internal error reply, got {other:?}"),
    }

    // The failpoint is one-shot: the next connection serves normally.
    let mut healthy = Client::connect(handle.addr()).expect("connect");
    let reply = healthy.query(&[0.5, 0.5], 5, 0, 0).expect("healthy query");
    assert_eq!(reply.ids.len(), 5);

    drtopk_failpoints::reset();
    handle.shutdown();
}
