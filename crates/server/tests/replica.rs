//! Multi-node serving over real sockets, in-process: shard-node servers
//! probed through [`RemoteShardProbe`] / [`ReplicaSet`] by a router
//! node, checked for bit-identity against the unsharded oracle.
//!
//! The contract under test (DESIGN.md, OPERATIONS.md §10):
//! * a remote deployment answers bit-identically to `query --index` on
//!   the same data — sharding and replication never change an answer;
//! * killing a replicated shard's primary mid-traffic costs a failover,
//!   not an answer: full coverage, zero degraded replies;
//! * a DRAINING endpoint is a *transient* fault — the probe maps it to
//!   [`ShardError::Unavailable`] and the replica set walks on to the
//!   next endpoint instead of failing the request;
//! * a listener that violates the hello exchange is *not* transient —
//!   `connect_with_retry` surfaces it immediately, no backoff burned.

use drtopk_common::{Distribution, Relation, Weights, WorkloadSpec};
use drtopk_core::shard::ShardError;
use drtopk_core::{
    DlOptions, DynamicIndex, Handle, QueryBudget, ReplicaConfig, ReplicaSet, ShardProbe,
};
use drtopk_server::protocol::{read_frame, write_frame};
use drtopk_server::{
    Client, ErrorCode, Message, RemoteProbeConfig, RemoteShardProbe, ServedShard, Server,
    ServerConfig, ServerHandle, Topology, HELLO,
};
use drtopk_storage::{create_sharded, shards::shard_dir, DurableDynamicIndex, DurableOptions};
use std::fs;
use std::io::{Read, Write};
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("drtopk_replica_{name}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Byte-for-byte copy of one shard directory: how an operator seeds a
/// replica (OPERATIONS.md §10 — copy while the writer is checkpointed).
fn copy_dir(src: &Path, dst: &Path) {
    fs::create_dir_all(dst).unwrap();
    for e in fs::read_dir(src).unwrap() {
        let e = e.unwrap();
        fs::copy(e.path(), dst.join(e.file_name())).unwrap();
    }
}

/// Starts one shard-node server over the store at `dir`.
fn start_shard_node(s: usize, dir: &Path) -> ServerHandle {
    let (store, _) = DurableDynamicIndex::open(dir, DurableOptions::default()).unwrap();
    Server::start_shard_node(
        Arc::new(ServedShard::new(s, store)),
        ServerConfig::new().addr("127.0.0.1:0").workers(2),
    )
    .unwrap()
}

/// The exact unsharded oracle: one dynamic index over every tuple,
/// keeping global handles.
fn full_oracle(rel: &Relation) -> DynamicIndex {
    let handles: Vec<Handle> = (0..rel.len() as Handle).collect();
    DynamicIndex::with_handles(rel, handles, DlOptions::default(), 0.5).unwrap()
}

/// Remote deployment, replicated shard, primary killed mid-traffic:
/// answers stay bit-identical to the unsharded oracle with full
/// coverage throughout, and the health pinger marks the dead endpoint
/// down without taking the shard down.
#[test]
fn remote_router_survives_primary_kill_bit_identically() {
    let p = 2;
    let rel = WorkloadSpec::new(Distribution::Independent, 2, 200, 11).generate();
    let root = tmpdir("kill");
    drop(create_sharded(&root, &rel, p, &DurableOptions::default()).unwrap());

    // Both shards replicated: primary serves the original directory,
    // the replica serves a byte-identical copy.
    let mut nodes: Vec<ServerHandle> = Vec::new();
    let mut lines = String::from("dims 2\n");
    for s in 0..p {
        let dir = shard_dir(&root, s);
        let copy = root.join(format!("replica.{s:04}"));
        copy_dir(&dir, &copy);
        let primary = start_shard_node(s, &dir);
        let replica = start_shard_node(s, &copy);
        lines.push_str(&format!(
            "shard {s} {} {}\n",
            primary.addr(),
            replica.addr()
        ));
        nodes.push(primary);
        nodes.push(replica);
    }
    lines.push_str("probe-timeout-ms 500\nping-interval-ms 50\nping-timeout-ms 50\n");
    let topo = Topology::parse(&lines).unwrap();
    let router = Server::start_router(
        topo.build_router().unwrap(),
        Some(topo.pinger_config()),
        ServerConfig::new().addr("127.0.0.1:0").workers(2),
    )
    .unwrap();
    let mut client = Client::connect(router.addr()).unwrap();

    let w = vec![0.3, 0.7];
    let k = 10;
    let weights = Weights::new(w.clone()).unwrap();
    let oracle_ids = full_oracle(&rel).topk(&weights, k).0;

    // Healthy baseline: the remote answer IS the unsharded answer.
    let reply = client.query(&w, k as u32, 0, 0).unwrap();
    assert_eq!(reply.ids, oracle_ids, "remote == unsharded oracle");
    assert!(reply.is_full_coverage(), "healthy baseline coverage");
    assert_eq!(reply.truncated, 0);

    // Kill shard 1's primary. Every subsequent answer must come from the
    // replica: bit-identical, full coverage, zero degraded replies.
    let dead_addr = nodes[2].addr().to_string();
    nodes.remove(2).shutdown();
    for _ in 0..5 {
        let reply = client.query(&w, k as u32, 0, 0).unwrap();
        assert_eq!(reply.ids, oracle_ids, "failover preserves bit-identity");
        assert!(
            reply.is_full_coverage(),
            "a replicated shard must not degrade coverage"
        );
    }

    // The pinger notices: the dead endpoint's gauge drops to 0 while the
    // shard itself stays served (its replica answers PING).
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let text = client.metrics_text().unwrap();
        let dead_down = text.lines().any(|l| {
            l.starts_with("drtopk_endpoint_up{shard=\"1\"")
                && l.contains(&format!("addr=\"{dead_addr}\""))
                && l.ends_with(" 0")
        });
        if dead_down {
            assert!(
                text.contains("drtopk_shard_health{shard=\"1\"} 0"),
                "shard 1 must stay Up on its replica:\n{text}"
            );
            break;
        }
        assert!(
            Instant::now() < deadline,
            "pinger never marked the dead endpoint down:\n{text}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }

    router.shutdown();
    for n in nodes {
        n.shutdown();
    }
    let _ = fs::remove_dir_all(&root);
}

/// A protocol-correct stub endpoint that answers every request with
/// ERROR `ShuttingDown` — a node mid-drain. Returns its address.
fn draining_stub() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { return };
            std::thread::spawn(move || {
                let mut hello = [0u8; 8];
                if stream.read_exact(&mut hello).is_err() || stream.write_all(&HELLO).is_err() {
                    return;
                }
                while let Ok((id, _)) = read_frame(&mut stream) {
                    let msg = Message::Error {
                        code: ErrorCode::ShuttingDown,
                        message: "draining".to_string(),
                    };
                    if write_frame(&mut stream, id, &msg).is_err() {
                        return;
                    }
                }
            });
        }
    });
    addr
}

/// DRAINING during failover is transient: the probe classifies it as
/// [`ShardError::Unavailable`] (try a replica, keep trusting the data),
/// and a replica set whose primary drains walks on to the replica and
/// answers bit-identically — repeatedly, since the endpoint may come
/// back.
#[test]
fn draining_primary_fails_over_as_transient() {
    let rel = WorkloadSpec::new(Distribution::Independent, 2, 150, 29).generate();
    let root = tmpdir("drain");
    drop(create_sharded(&root, &rel, 1, &DurableOptions::default()).unwrap());
    let node = start_shard_node(0, &shard_dir(&root, 0));
    let stub = draining_stub();

    let cfg = RemoteProbeConfig::default();
    // Alone, the draining endpoint is Unavailable — a failover-class
    // fault, not a request abort and not distrust of the data.
    let probe = RemoteShardProbe::new(&stub, 2, cfg.clone());
    let w = Weights::new(vec![0.5, 0.5]).unwrap();
    match probe.probe(&w, 5, &QueryBudget::unlimited()) {
        Err(ShardError::Unavailable(msg)) => assert!(msg.contains("draining"), "{msg}"),
        other => panic!("draining endpoint must map to Unavailable, got {other:?}"),
    }

    // Fronted by a replica set with a healthy replica, the drain costs a
    // failover, never an answer.
    let set = ReplicaSet::new(
        vec![
            Arc::new(RemoteShardProbe::new(&stub, 2, cfg.clone())),
            Arc::new(RemoteShardProbe::new(node.addr().to_string(), 2, cfg)),
        ],
        ReplicaConfig::default(),
    )
    .unwrap();
    let oracle_ids = full_oracle(&rel).topk(&w, 5).0;
    for _ in 0..3 {
        let (hits, _) = set.probe(&w, 5, &QueryBudget::unlimited()).unwrap();
        let ids: Vec<Handle> = hits.iter().map(|&(_, h)| h).collect();
        assert_eq!(ids, oracle_ids, "failover answer is bit-identical");
    }
    assert!(!set.is_up(0), "the draining primary is believed down");
    assert!(set.is_up(1), "the replica is believed up");

    node.shutdown();
    let _ = fs::remove_dir_all(&root);
}

/// A listener that accepts and then violates the hello exchange is a
/// *non-transient* failure: `connect_with_retry` must surface it on the
/// first attempt — retrying cannot fix a spec violation, and burning
/// backoff on one would stall every failover that walks past it.
#[test]
fn connect_with_retry_fails_fast_on_bad_hello() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { return };
            let mut hello = [0u8; 8];
            let _ = stream.read_exact(&mut hello);
            let _ = stream.write_all(b"NOTDRTOP");
        }
    });

    let backoff = Duration::from_millis(300);
    let t0 = Instant::now();
    let err = Client::connect_with_retry(addr.as_str(), 5, backoff).unwrap_err();
    let elapsed = t0.elapsed();
    assert!(
        matches!(err, drtopk_server::ClientError::Unexpected(_)),
        "bad hello is a protocol violation, got {err:?}"
    );
    // With 5 retries the first backoff alone would sleep >= 150 ms
    // (jitter floor 0.5 x 300 ms); failing fast means none were taken.
    assert!(
        elapsed < Duration::from_millis(150),
        "bad hello must not burn retry backoff (took {elapsed:?})"
    );
}
