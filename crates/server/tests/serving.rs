//! End-to-end loopback tests: a real server on an ephemeral port,
//! concurrent clients, and the differential contract — every network
//! answer bit-identical (ids + costs) to an in-process `topk` call,
//! including budget-truncated partials. Plus the overload contract
//! (sheds are *reported*, never dropped), graceful drain, the HTTP
//! metrics escape hatch, and forward-compat error replies.

use drtopk_common::{Distribution, Weights, WorkloadSpec};
use drtopk_core::{DlOptions, DualLayerIndex, QueryBudget};
use drtopk_server::protocol::{read_frame, write_frame, Message};
use drtopk_server::{Client, ClientError, ErrorCode, Server, ServerConfig, HELLO};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn build_index(d: usize, n: usize, seed: u64) -> Arc<DualLayerIndex> {
    let rel = WorkloadSpec::new(Distribution::AntiCorrelated, d, n, seed).generate();
    Arc::new(DualLayerIndex::build(&rel, DlOptions::dl_plus()))
}

/// Raw weight vectors (pre-normalization): the server and the local
/// reference both construct `Weights::new` from the same f64s, so the
/// comparison is bit-exact by construction.
fn raw_weights(d: usize, count: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| (0..d).map(|_| rng.gen_range(0.05..1.0)).collect())
        .collect()
}

/// The acceptance-criteria differential: a seeded matrix of d/k/budget
/// options, N concurrent clients, every reply bit-identical (ids and
/// both cost components) to the in-process guarded traversal — complete
/// answers and cost-capped partials alike.
#[test]
fn loopback_matrix_is_bit_identical_to_in_process_topk() {
    for d in [2usize, 3] {
        let idx = build_index(d, 400, 13 + d as u64);
        let handle = Server::start(
            Arc::clone(&idx),
            ServerConfig::new()
                .workers(2)
                .batch_max(8)
                .batch_window(Duration::from_micros(100)),
        )
        .expect("start server");
        let addr = handle.addr();

        std::thread::scope(|s| {
            for client_id in 0..4u64 {
                let idx = Arc::clone(&idx);
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let pool = raw_weights(d, 12, 0xC11E47 + client_id);
                    for (i, raw) in pool.iter().enumerate() {
                        let k = [1usize, 5, 25][i % 3];
                        // Every 3rd query carries a cost cap tight enough
                        // to truncate most traversals.
                        let max_cost = if i % 3 == 2 { 4 } else { 0 };
                        let reply = client.query(raw, k as u32, 0, max_cost).expect("query");
                        let w = Weights::new(raw.clone()).unwrap();
                        let mut budget = QueryBudget::unlimited();
                        if max_cost > 0 {
                            budget = budget.with_max_cost(max_cost);
                        }
                        let want = idx.topk_guarded(&w, k, &budget);
                        let want_ids: Vec<u64> = want.ids.iter().map(|&id| u64::from(id)).collect();
                        assert_eq!(reply.ids, want_ids, "client {client_id} query {i}");
                        assert_eq!(
                            reply.evaluated, want.cost.evaluated,
                            "client {client_id} query {i}"
                        );
                        assert_eq!(
                            reply.pseudo_evaluated, want.cost.pseudo_evaluated,
                            "client {client_id} query {i}"
                        );
                        assert_eq!(
                            reply.is_complete(),
                            want.truncated.is_none(),
                            "client {client_id} query {i}"
                        );
                        if max_cost > 0 && want.truncated.is_some() {
                            assert_eq!(reply.truncated, 2, "cost-cap truncation flag");
                        }
                    }
                });
            }
        });
        handle.shutdown();
    }
}

/// `--cache` wiring: repeated weight vectors are served from the result
/// cache with ids still bit-identical to the traversal.
#[test]
fn cached_server_serves_repeats_bit_identically() {
    let d = 2;
    let idx = build_index(d, 300, 99);
    let handle = Server::start(Arc::clone(&idx), ServerConfig::new().cache(true).workers(1))
        .expect("start server");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let raw: Vec<f64> = vec![0.3, 0.7];
    let want: Vec<u64> = idx
        .topk(&Weights::new(raw.clone()).unwrap(), 10)
        .ids
        .iter()
        .map(|&id| u64::from(id))
        .collect();
    for round in 0..10 {
        let reply = client.query(&raw, 10, 0, 0).expect("query");
        assert_eq!(reply.ids, want, "round {round}");
        assert!(reply.is_complete());
    }
    // After the first round the weight cell is hot; later rounds must be
    // cache hits (cost 0 on the 2-d cell path, ≤ k rescores certified).
    let last = client.query(&raw, 10, 0, 0).expect("query");
    assert!(
        last.evaluated <= 10,
        "hot cell must not re-run the traversal: evaluated {}",
        last.evaluated
    );
    handle.shutdown();
}

/// §5.1: a full queue sheds with an explicit `Overloaded` reply — every
/// request is answered, nothing is silently dropped. `queue_depth(0)`
/// makes the overload deterministic.
#[test]
fn overload_sheds_are_reported_not_dropped() {
    let idx = build_index(2, 200, 7);
    let handle =
        Server::start(Arc::clone(&idx), ServerConfig::new().queue_depth(0)).expect("start server");
    let mut client = Client::connect(handle.addr()).expect("connect");
    for i in 0..20 {
        match client.query(&[0.5, 0.5], 5, 0, 0) {
            Err(ClientError::Server { code, message }) => {
                assert_eq!(code, ErrorCode::Overloaded, "request {i}");
                assert!(!message.is_empty());
            }
            other => panic!("request {i}: want Overloaded, got {other:?}"),
        }
    }
    // The sheds are visible in the serving metrics.
    let text = client.metrics_text().expect("metrics");
    let sheds: u64 = text
        .lines()
        .find(|l| l.starts_with("drtopk_server_sheds_total"))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .expect("sheds counter present");
    assert!(sheds >= 20, "20 sheds must be counted, saw {sheds}");
    handle.shutdown();
}

/// Bad requests (wrong dims, non-finite weights) get coded replies and
/// the connection survives them.
#[test]
fn bad_requests_are_rejected_and_the_connection_survives() {
    let idx = build_index(2, 150, 21);
    let handle = Server::start(Arc::clone(&idx), ServerConfig::new()).expect("start");
    let mut client = Client::connect(handle.addr()).expect("connect");
    for bad in [vec![0.5, 0.3, 0.2], vec![f64::NAN, 1.0], vec![-1.0, 2.0]] {
        match client.query(&bad, 5, 0, 0) {
            Err(ClientError::Server { code, .. }) => {
                assert_eq!(code, ErrorCode::BadRequest, "weights {bad:?}")
            }
            other => panic!("weights {bad:?}: want BadRequest, got {other:?}"),
        }
    }
    // Still alive and correct afterwards.
    let reply = client.query(&[0.5, 0.5], 3, 0, 0).expect("healthy query");
    assert_eq!(reply.ids.len(), 3);
    handle.shutdown();
}

/// §5.3: an unknown request type draws `ERR_UNSUPPORTED` for that id and
/// the connection keeps working — the forward-compat rule.
#[test]
fn unknown_message_type_gets_unsupported_not_a_hangup() {
    let idx = build_index(2, 100, 3);
    let handle = Server::start(Arc::clone(&idx), ServerConfig::new()).expect("start");
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream.write_all(&HELLO).expect("hello");
    let mut echo = [0u8; 8];
    stream.read_exact(&mut echo).expect("echo");
    assert_eq!(echo, HELLO);
    // Hand-build a sound frame with unknown type 0x42: splice the type
    // byte into a PING frame and re-checksum.
    let mut frame = drtopk_server::protocol::encode_frame(77, &Message::Ping);
    frame[8] = 0x42;
    let crc = drtopk_storage::format::crc32(&frame[8..]);
    frame[4..8].copy_from_slice(&crc.to_le_bytes());
    stream.write_all(&frame).expect("send unknown");
    match read_frame(&mut stream).expect("reply") {
        (77, Message::Error { code, .. }) => assert_eq!(code, ErrorCode::Unsupported),
        other => panic!("want Unsupported for id 77, got {other:?}"),
    }
    // The connection survives: a PING still answers.
    write_frame(&mut stream, 78, &Message::Ping).expect("ping");
    match read_frame(&mut stream).expect("pong") {
        (78, Message::Pong) => {}
        other => panic!("want Pong, got {other:?}"),
    }
    handle.shutdown();
}

/// §3.4 + §4.4: a client-initiated DRAIN is acknowledged, the server
/// drains, and the listener goes away.
#[test]
fn drain_frame_shuts_the_server_down_gracefully() {
    let idx = build_index(2, 100, 5);
    let handle = Server::start(Arc::clone(&idx), ServerConfig::new()).expect("start");
    let addr = handle.addr();
    let mut client = Client::connect(addr).expect("connect");
    // Work first, then drain: the admitted query must be answered.
    let reply = client.query(&[0.4, 0.6], 5, 0, 0).expect("query");
    assert_eq!(reply.ids.len(), 5);
    client.drain().expect("drain acknowledged");
    // wait() returns because the DRAIN joined every thread.
    handle.wait();
    // The listener is gone: new connections are refused (or reset).
    assert!(
        TcpStream::connect(addr).is_err() || Client::connect(addr).is_err(),
        "post-drain connections must fail"
    );
}

/// §6: the same port answers plain HTTP for Prometheus scrapers, with
/// the serving metrics present, and 404s everything but /metrics.
#[test]
fn http_metrics_escape_hatch() {
    let idx = build_index(2, 100, 11);
    let handle = Server::start(Arc::clone(&idx), ServerConfig::new()).expect("start");
    let addr = handle.addr();

    let mut ok = TcpStream::connect(addr).expect("connect");
    ok.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").expect("get");
    let mut body = String::new();
    ok.read_to_string(&mut body).expect("read");
    assert!(body.starts_with("HTTP/1.0 200 OK"), "{body}");
    assert!(body.contains("drtopk_server_connections_total"), "{body}");
    assert!(body.contains("drtopk_index_tuples"), "{body}");

    let mut missing = TcpStream::connect(addr).expect("connect");
    missing
        .write_all(b"GET /nope HTTP/1.0\r\n\r\n")
        .expect("get");
    let mut reply = String::new();
    missing.read_to_string(&mut reply).expect("read");
    assert!(reply.starts_with("HTTP/1.0 404"), "{reply}");

    // The protocol-level METRICS frame returns the same exposition shape.
    let mut client = Client::connect(addr).expect("connect");
    let text = client.metrics_text().expect("metrics frame");
    assert!(text.contains("drtopk_server_requests_total"));
    handle.shutdown();
}

/// Pipelining: many queries in flight on one connection, replies paired
/// by request id regardless of arrival order.
#[test]
fn pipelined_queries_pair_up_by_request_id() {
    let d = 3;
    let idx = build_index(d, 300, 17);
    let handle = Server::start(
        Arc::clone(&idx),
        ServerConfig::new()
            .workers(2)
            .batch_max(4)
            .batch_window(Duration::from_micros(50)),
    )
    .expect("start");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let pool = raw_weights(d, 24, 0xF00D);
    let mut expected = std::collections::HashMap::new();
    for raw in &pool {
        let id = client.send_query(raw, 7, 0, 0).expect("send");
        let w = Weights::new(raw.clone()).unwrap();
        let want: Vec<u64> = idx.topk(&w, 7).ids.iter().map(|&x| u64::from(x)).collect();
        expected.insert(id, want);
    }
    for _ in 0..pool.len() {
        let (id, reply) = client.recv_topk().expect("recv");
        let want = expected.remove(&id).expect("unknown or duplicate id");
        assert_eq!(reply.ids, want, "request {id}");
    }
    assert!(expected.is_empty());
    handle.shutdown();
}
