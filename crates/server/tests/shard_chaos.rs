//! Sharded-serving chaos matrix: every single-shard failure mode the
//! router promises to survive, injected deterministically, checked
//! against partition oracles.
//!
//! The contract under test (DESIGN.md §9):
//! * a failing shard degrades *coverage*, never availability — requests
//!   complete with ids bit-identical to the exact top-k over the
//!   surviving partitions, and the reply names the skipped shard;
//! * the failed shard recovers from its own WAL/snapshot directory
//!   without its peers' files changing by a single byte;
//! * after rejoin, answers are bit-identical to the full unsharded
//!   oracle — no stale (pre-recovery) answers survive.
//!
//! Requires `--features failpoints`. The failpoint registry is process
//! global, so tests serialize on [`LOCK`] and reset the registry on
//! entry.
#![cfg(feature = "failpoints")]

use drtopk_common::{Distribution, Relation, Weights, WorkloadSpec};
use drtopk_core::shard::shard_of;
use drtopk_core::{
    DlOptions, DynamicIndex, Handle, QueryBudget, ResultCache, RetryPolicy, RouterConfig,
    ShardHealth, ShardRouter,
};
use drtopk_failpoints::{arm, reset, shard_site, visits, FailAction};
use drtopk_server::{Client, ServedShard, Server, ServerConfig};
use drtopk_storage::{create_sharded, shards::shard_dir, DurableDynamicIndex, DurableOptions};
use std::fs;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

static LOCK: Mutex<()> = Mutex::new(());

fn guard() -> MutexGuard<'static, ()> {
    let g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    reset();
    g
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("drtopk_shard_chaos_{name}"));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn opts() -> DurableOptions {
    DurableOptions {
        rebuild_fraction: 0.5,
        ..DurableOptions::default()
    }
}

/// The exact top-k oracle over the partitions that are *not* dead: an
/// unsharded dynamic index over the surviving tuples, keeping global
/// handles.
fn survivor_oracle(rel: &Relation, shards: usize, dead: &[usize]) -> DynamicIndex {
    let dims = rel.dims();
    let mut flat = Vec::new();
    let mut handles = Vec::new();
    for (t, row) in rel.iter() {
        if !dead.contains(&shard_of(t as Handle, shards)) {
            flat.extend_from_slice(row);
            handles.push(t as Handle);
        }
    }
    DynamicIndex::with_handles(
        &Relation::from_flat_unchecked(dims, flat),
        handles,
        DlOptions::default(),
        0.5,
    )
    .unwrap()
}

/// A router config that fails fast and deterministically: no retries, a
/// single failure takes the shard Down, probes time out quickly.
fn chaos_config() -> RouterConfig {
    RouterConfig {
        retry: RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        },
        probe_timeout: Some(Duration::from_millis(20)),
        down_after: 1,
    }
}

/// The tentpole matrix: inject a panic, an I/O error, and a stall (which
/// trips the carved probe timeout) at one shard's probe site, mid-load,
/// through the full server + wire protocol. Each mode must yield a
/// complete reply with exact survivor-oracle ids and explicit degraded
/// coverage — zero protocol errors — and the shard must rejoin from its
/// own directory afterwards with answers restored to the full oracle.
#[test]
fn injected_failure_matrix_degrades_then_recovers() {
    let modes: [(&str, FailAction); 3] = [
        ("io", FailAction::Error),
        ("panic", FailAction::Panic),
        ("stall", FailAction::Sleep(200)),
    ];
    for (name, action) in modes {
        let _g = guard();
        let p = 3;
        let dead = 1usize;
        let rel = WorkloadSpec::new(Distribution::Independent, 2, 150, 23).generate();
        let root = tmpdir(&format!("matrix_{name}"));
        let stores = create_sharded(&root, &rel, p, &opts()).unwrap();
        let shards: Vec<ServedShard> = stores
            .into_iter()
            .enumerate()
            .map(|(s, st)| ServedShard::new(s, st))
            .collect();
        let router = Arc::new(ShardRouter::new(shards, chaos_config()).unwrap());
        let handle = Server::start_sharded(
            Arc::clone(&router),
            ServerConfig::new().addr("127.0.0.1:0").workers(2),
        )
        .unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();

        let w = vec![0.4, 0.6];
        let k = 12;
        let full = survivor_oracle(&rel, p, &[]);
        let weights = Weights::new(w.clone()).unwrap();
        let full_ids = full.topk(&weights, k).0;

        // Healthy baseline: full coverage, bit-identical to the oracle.
        let reply = client.query(&w, k as u32, 0, 0).unwrap();
        assert_eq!(reply.ids, full_ids, "{name}: healthy baseline");
        assert!(reply.is_full_coverage(), "{name}: baseline coverage");

        // Inject the fault at shard 1's probe site and query mid-load.
        arm(shard_site(dead), 0, action.clone());
        let survivors = survivor_oracle(&rel, p, &[dead]);
        let reply = client.query(&w, k as u32, 0, 0).unwrap();
        assert_eq!(
            reply.ids,
            survivors.topk(&weights, k).0,
            "{name}: degraded ids must be the exact survivor-partition top-k"
        );
        assert_eq!(reply.truncated, 0, "{name}: degraded is not truncated");
        let cov = reply.coverage.expect("degraded reply carries coverage");
        assert_eq!(cov.shards, p as u16, "{name}");
        assert_eq!(
            cov.skipped(),
            vec![dead],
            "{name}: coverage names the shard"
        );
        assert_eq!(
            router.health()[dead],
            ShardHealth::Down,
            "{name}: one failure past the (zero) retry budget takes it Down"
        );

        // While Down the shard is not probed: degraded replies are free.
        let before = visits(shard_site(dead));
        let reply = client.query(&w, k as u32, 0, 0).unwrap();
        assert_eq!(
            reply.coverage.expect("still degraded").skipped(),
            vec![dead]
        );
        assert_eq!(
            visits(shard_site(dead)),
            before,
            "{name}: a Down shard must be skipped, not probed"
        );

        // Recovery: reopen the shard from its own directory (the faults
        // above are transient — its WAL/snapshot are intact), swap it in,
        // and mark it Up. Answers return to the full oracle bit-for-bit.
        let (store, report) = DurableDynamicIndex::open(&shard_dir(&root, dead), opts()).unwrap();
        assert!(!report.torn_tail, "{name}: clean shard recovery");
        router.shard(dead).replace(store);
        router.mark_up(dead);
        let reply = client.query(&w, k as u32, 0, 0).unwrap();
        assert_eq!(reply.ids, full_ids, "{name}: post-recovery bit-identity");
        assert!(reply.is_full_coverage(), "{name}: post-recovery coverage");

        handle.shutdown();
    }
}

/// At-rest corruption: a shard whose newest snapshot rots recovers from
/// its previous generation + WAL — its *own* directory only; the peers'
/// files must not change by one byte. A shard trashed beyond recovery
/// is quarantined behind an unavailable slot and the deployment serves
/// degraded around it.
#[test]
fn corrupt_snapshot_quarantines_to_one_shard() {
    let _g = guard();
    let p = 3;
    let rel = WorkloadSpec::new(Distribution::Independent, 2, 120, 5).generate();
    let root = tmpdir("corrupt");
    let mut stores = create_sharded(&root, &rel, p, &opts()).unwrap();

    // Give shard 1 history: a checkpoint (generation 1) plus a WAL tail,
    // so recovery has a previous generation to fall back to.
    let extra: Handle = {
        let s1 = &mut stores[1];
        s1.checkpoint().unwrap();
        let h = s1.index().next_handle();
        // Round up to the next handle ≡ 1 (mod p): shard 1's id class.
        let h = h + (1 + p as u64 - h % p as u64) % p as u64;
        s1.insert_with_handle(h, &[0.0, 0.0]).unwrap();
        h
    };
    assert_eq!(shard_of(extra, p), 1);
    drop(stores);

    // Rot the newest snapshot of shard 1; leave its WAL alone.
    let dir1 = shard_dir(&root, 1);
    let newest_snap = {
        let mut snaps: Vec<PathBuf> = fs::read_dir(&dir1)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|f| {
                f.file_name()
                    .unwrap()
                    .to_str()
                    .unwrap()
                    .starts_with("snapshot.")
            })
            .collect();
        snaps.sort();
        snaps.pop().unwrap()
    };
    let mut bytes = fs::read(&newest_snap).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    fs::write(&newest_snap, &bytes).unwrap();

    // Fingerprint the peers before shard 1's recovery runs.
    let fingerprint = |s: usize| -> Vec<(PathBuf, Vec<u8>)> {
        let mut files: Vec<PathBuf> = fs::read_dir(shard_dir(&root, s))
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        files.sort();
        files
            .into_iter()
            .map(|f| (f.clone(), fs::read(&f).unwrap()))
            .collect()
    };
    let peers_before = (fingerprint(0), fingerprint(2));

    // Shard 1 recovers by skipping the rotten snapshot; the acked insert
    // survives via the WAL.
    let (store1, report) = DurableDynamicIndex::open(&dir1, opts()).unwrap();
    assert!(report.snapshots_skipped > 0, "rotten snapshot was skipped");
    assert!(store1.index().get(extra).is_some(), "acked insert survives");
    assert_eq!(
        peers_before,
        (fingerprint(0), fingerprint(2)),
        "peer shard files must be byte-identical after shard 1's recovery"
    );

    // Served answers post-recovery: bit-identical to an oracle over the
    // full relation plus the extra tuple.
    let reopen = |s: usize| {
        DurableDynamicIndex::open(&shard_dir(&root, s), opts())
            .unwrap()
            .0
    };
    let shards = vec![
        ServedShard::new(0, reopen(0)),
        ServedShard::new(1, store1),
        ServedShard::new(2, reopen(2)),
    ];
    let router = ShardRouter::new(shards, chaos_config()).unwrap();
    let weights = Weights::new(vec![0.5, 0.5]).unwrap();
    let routed = router.topk(&weights, 10, &QueryBudget::unlimited());
    assert!(routed.coverage.is_full());
    // The [0, 0] tuple minimizes every weighting: it must lead.
    assert_eq!(routed.ids.first(), Some(&extra));

    // Beyond-recovery damage: trash the whole directory. The slot goes
    // unavailable, the deployment serves degraded around it.
    for entry in fs::read_dir(&dir1).unwrap() {
        fs::write(entry.unwrap().path(), b"garbage").unwrap();
    }
    let err = DurableDynamicIndex::open(&dir1, opts()).unwrap_err();
    let shards = vec![
        ServedShard::new(0, reopen(0)),
        ServedShard::unavailable(1, 2, err.to_string()),
        ServedShard::new(2, reopen(2)),
    ];
    let router = ShardRouter::new(shards, chaos_config()).unwrap();
    router.cordon(1);
    let survivors = survivor_oracle(&rel, p, &[1]);
    let routed = router.topk(&weights, 10, &QueryBudget::unlimited());
    assert_eq!(routed.coverage.skipped(), vec![1]);
    assert_eq!(routed.ids, survivors.topk(&weights, 10).0);
}

/// Rejoin serves no stale answers: a result cache filled before the
/// shard died must not leak pre-recovery answers after the shard comes
/// back with *more* data (replayed from its WAL). The generation stamp
/// on every cache entry is what enforces this.
#[test]
fn rejoin_serves_no_stale_cached_answers() {
    let _g = guard();
    let p = 2;
    let rel = WorkloadSpec::new(Distribution::Independent, 2, 80, 13).generate();
    let root = tmpdir("stale");
    let mut stores = create_sharded(&root, &rel, p, &opts()).unwrap();
    // One cache per shard: the key space has no shard identity in it, so
    // sharing a cache across shard indexes would cross answers.
    for st in &mut stores {
        st.attach_cache(Arc::new(ResultCache::default()));
    }
    let shards: Vec<ServedShard> = stores
        .into_iter()
        .enumerate()
        .map(|(s, st)| ServedShard::new(s, st))
        .collect();
    let router = ShardRouter::new(shards, chaos_config()).unwrap();
    let weights = Weights::new(vec![0.3, 0.7]).unwrap();

    // Warm the cache with the pre-mutation answer.
    let before = router.topk(&weights, 8, &QueryBudget::unlimited());
    assert!(before.coverage.is_full());

    // Mutate shard 0: insert a tuple that dominates everything, logged
    // to its WAL (acked), then crash the shard (drop without
    // checkpoint) and recover it from disk.
    let h = router
        .shard(0)
        .with_store_mut(|st| {
            let h = st.index().next_handle();
            let h = h + (p as u64 - h % p as u64) % p as u64;
            st.insert_with_handle(h, &[0.0, 0.0]).unwrap();
            h
        })
        .unwrap();
    assert_eq!(shard_of(h, p), 0);
    let (recovered, report) = DurableDynamicIndex::open(&shard_dir(&root, 0), opts()).unwrap();
    assert!(report.replayed > 0, "the insert must come back via the WAL");
    router.shard(0).replace(recovered);
    router.mark_up(0);

    // Same weights, same k: the answer must now lead with the new
    // tuple — a stale cache hit would reproduce `before` instead.
    let after = router.topk(&weights, 8, &QueryBudget::unlimited());
    assert!(after.coverage.is_full());
    assert_eq!(after.ids.first(), Some(&h), "new tuple leads post-rejoin");
    assert_ne!(
        after.ids, before.ids,
        "pre-recovery answer must not survive"
    );
}
