//! Background health pinger for a multi-node router.
//!
//! A dead node should be skipped *before* a query pays its timeout. One
//! pinger thread walks every endpoint of every replica set on a fixed
//! interval, sending PING frames (`PROTOCOL.md` §3.3) over cached
//! connections with a short read timeout — a SIGSTOP'd node still
//! accepts TCP connects, so liveness means an answered PONG, not an
//! accepted SYN. Outcomes feed two levels of state:
//!
//! * **Endpoint beliefs** ([`ReplicaSet::set_up`]): `down_after`
//!   consecutive ping failures mark an endpoint down (probes stop
//!   preferring it); one answered PONG marks it up again.
//! * **Router health slots**: all endpoints of a shard down →
//!   [`ShardRouter::cordon`](drtopk_core::ShardRouter::cordon) (queries
//!   skip the shard without paying a probe); a cordoned shard with a
//!   live endpoint again → [`ShardRouter::mark_up`](drtopk_core::ShardRouter::mark_up)
//!   — the automatic rejoin path after `drtopk recover` restarts a node.

use crate::client::Client;
use crate::remote::RemoteRouter;
use drtopk_core::ShardHealth;
use drtopk_obs::metrics;
use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Pinger tunables.
#[derive(Debug, Clone)]
pub struct PingerConfig {
    /// Sleep between full sweeps of every endpoint.
    pub interval: Duration,
    /// Read timeout on each PING — a node that accepts but does not
    /// answer within this window counts as a failure.
    pub timeout: Duration,
    /// Consecutive ping failures after which an endpoint is believed
    /// down. Minimum 1.
    pub down_after: u32,
}

impl Default for PingerConfig {
    fn default() -> Self {
        PingerConfig {
            interval: Duration::from_millis(200),
            timeout: Duration::from_millis(100),
            down_after: 2,
        }
    }
}

/// A running health pinger; stop it with [`HealthPinger::stop`] (also
/// invoked on drop).
#[derive(Debug)]
pub struct HealthPinger {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl HealthPinger {
    /// Spawns the pinger thread over every endpoint `router` routes to.
    pub fn start(router: Arc<RemoteRouter>, cfg: PingerConfig) -> Self {
        let cfg = PingerConfig {
            down_after: cfg.down_after.max(1),
            ..cfg
        };
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("drtopk-pinger".to_string())
            .spawn(move || pinger_loop(&router, &cfg, &stop2))
            .expect("spawn pinger");
        HealthPinger {
            stop,
            thread: Some(thread),
        }
    }

    /// Stops the thread and joins it.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for HealthPinger {
    fn drop(&mut self) {
        self.halt();
    }
}

/// Per-endpoint pinger state: a cached connection and a failure streak.
struct EndpointState {
    client: Option<Client>,
    consecutive_failures: u32,
}

fn pinger_loop(router: &Arc<RemoteRouter>, cfg: &PingerConfig, stop: &AtomicBool) {
    let m = metrics();
    let mut state: Vec<Vec<EndpointState>> = (0..router.shards())
        .map(|s| {
            (0..router.shard(s).len())
                .map(|_| EndpointState {
                    client: None,
                    consecutive_failures: 0,
                })
                .collect()
        })
        .collect();
    while !stop.load(SeqCst) {
        for (s, slots) in state.iter_mut().enumerate() {
            let set = router.shard(s);
            for (i, slot) in slots.iter_mut().enumerate() {
                if stop.load(SeqCst) {
                    return;
                }
                m.endpoint_ping();
                if ping_once(set.replica(i).addr(), cfg.timeout, &mut slot.client) {
                    slot.consecutive_failures = 0;
                    set.set_up(i, true);
                } else {
                    m.endpoint_ping_failure();
                    slot.client = None; // reconnect next sweep
                    slot.consecutive_failures = slot.consecutive_failures.saturating_add(1);
                    if slot.consecutive_failures >= cfg.down_after {
                        set.set_up(i, false);
                    }
                }
            }
            let any_up = (0..set.len()).any(|i| set.is_up(i));
            let shard_down = router.health()[s] == ShardHealth::Down;
            if !any_up && !shard_down {
                // Every replica is gone: cordon so queries skip the
                // shard without paying its probe timeout.
                router.cordon(s);
            } else if any_up && shard_down {
                // Rejoin: a recovered endpoint answered PING while the
                // shard sat cordoned.
                router.mark_up(s);
            }
        }
        // Sleep in short slices so stop() returns promptly.
        let mut slept = Duration::ZERO;
        while slept < cfg.interval && !stop.load(SeqCst) {
            let slice = (cfg.interval - slept).min(Duration::from_millis(25));
            std::thread::sleep(slice);
            slept += slice;
        }
    }
}

/// One PING against `addr`, reusing `cached` when possible. Returns
/// whether a PONG came back inside the timeout.
fn ping_once(addr: &str, timeout: Duration, cached: &mut Option<Client>) -> bool {
    if cached.is_none() {
        // Fail fast here: the pinger's sweep interval *is* the retry
        // loop, so burning a backoff schedule per endpoint would only
        // delay the rest of the sweep. The timeout guards the hello too:
        // a SIGSTOP'd node accepts the connect but never echoes.
        match Client::connect_timeout(addr, timeout) {
            Ok(c) => *cached = Some(c),
            Err(_) => return false,
        }
    }
    match cached.as_mut() {
        Some(c) => c.ping().is_ok(),
        None => false,
    }
}
