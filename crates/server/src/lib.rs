//! Network index service for the dual-resolution layer index.
//!
//! Everything the workspace built in-process — the O(touched) query hot
//! path, guarded budgets, the batch executor, the weight-space result
//! cache — becomes reachable over TCP here. The design splits three
//! ways:
//!
//! * [`protocol`] — the hand-rolled wire format. **`PROTOCOL.md` is the
//!   contract**: length-prefixed CRC-checked frames in the style of the
//!   write-ahead log, a budget header per query, explicit error codes.
//! * [`server`] — the service: per-connection readers feed one bounded
//!   admission queue; a fixed worker pool drains it in adaptive
//!   micro-batches (flush on size or age) through
//!   [`BatchExecutor::run_guarded_each`](drtopk_core::BatchExecutor::run_guarded_each),
//!   each request under its own deadline. Overload sheds fast
//!   (`Overloaded` replies) instead of queueing without bound; shutdown
//!   drains gracefully; `/metrics` answers both a protocol frame and
//!   plain HTTP.
//! * [`client`] — a blocking client with pipelining support, used by the
//!   CLI (`drtopk query --connect`), the tests, and the serving load
//!   generator.
//! * [`shard`] — the served form of one shard for
//!   [`Server::start_sharded`]: a durable per-shard store probed through
//!   the core [`ShardRouter`](drtopk_core::ShardRouter), with failpoint
//!   injection on every probe so chaos tests can prove single-shard
//!   failures degrade coverage instead of availability.
//!
//! ```no_run
//! use drtopk_common::{Distribution, WorkloadSpec};
//! use drtopk_core::{DlOptions, DualLayerIndex};
//! use drtopk_server::{Client, Server, ServerConfig};
//! use std::sync::Arc;
//!
//! let rel = WorkloadSpec::new(Distribution::Independent, 2, 500, 7).generate();
//! let idx = Arc::new(DualLayerIndex::build(&rel, DlOptions::dl_plus()));
//! let handle = Server::start(idx, ServerConfig::new().addr("127.0.0.1:0")).unwrap();
//! let mut client = Client::connect(handle.addr()).unwrap();
//! let reply = client.query(&[0.5, 0.5], 10, 0, 0).unwrap();
//! assert_eq!(reply.ids.len(), 10);
//! handle.shutdown();
//! ```
#![warn(missing_docs)]

pub mod client;
pub mod pinger;
pub mod protocol;
pub mod remote;
pub mod server;
pub mod shard;
pub mod topology;

pub use client::{Client, ClientError, TopkReply};
pub use pinger::{HealthPinger, PingerConfig};
pub use protocol::{Coverage, ErrorCode, Message, WireError, HELLO, MAX_PAYLOAD};
pub use remote::{RemoteProbeConfig, RemoteRouter, RemoteShardProbe};
pub use server::{Server, ServerConfig, ServerHandle, ACCEPT_FAILPOINT};
pub use shard::ServedShard;
pub use topology::Topology;
