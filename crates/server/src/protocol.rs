//! Wire-format encoder/decoder for the drtopk network protocol.
//!
//! **`PROTOCOL.md` is the contract**; this module is its implementation.
//! Every message and field below names the spec section it encodes, and
//! `tests/protocol.rs` pins the spec's worked hex examples (§7) against
//! this encoder byte-for-byte.
//!
//! Framing (§2) follows the write-ahead log: `len u32 LE | crc32 u32 LE |
//! payload`, CRC-32 IEEE over the payload (the same
//! [`drtopk_storage::format::crc32`] the WAL uses), payloads capped at
//! 1 MiB. A frame that fails any check is a [`WireError::Corrupt`]: the
//! stream is unreadable past it, exactly like a torn WAL tail.

use drtopk_storage::format::crc32;
use std::io::{self, Read, Write};

/// Connection hello (§1.1): 7 magic bytes + the protocol version.
pub const HELLO: [u8; 8] = *b"DRTOPKN\x01";

/// Largest permitted frame payload (§2.1): 1 MiB, matching
/// [`drtopk_storage::MAX_WAL_RECORD`].
pub const MAX_PAYLOAD: usize = 1 << 20;

/// Fixed payload-header length (§2.3): type byte + request id.
const HEADER: usize = 1 + 8;

/// Message type bytes (§3, §4, §5).
mod ty {
    pub const QUERY: u8 = 0x01;
    pub const METRICS_REQ: u8 = 0x02;
    pub const PING: u8 = 0x03;
    pub const DRAIN: u8 = 0x04;
    pub const SHARD_QUERY: u8 = 0x05;
    pub const TOPK: u8 = 0x81;
    pub const METRICS_REP: u8 = 0x82;
    pub const PONG: u8 = 0x83;
    pub const DRAINING: u8 = 0x84;
    pub const ERROR: u8 = 0x7F;
}

/// Error codes carried by an ERROR frame (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// Malformed body, wrong dimensionality, invalid weights (§5 code 1).
    BadRequest = 1,
    /// Admission queue at capacity; the request was shed (§5 code 2).
    Overloaded = 2,
    /// Server is draining; the request was not admitted (§5 code 3).
    ShuttingDown = 3,
    /// The request failed inside the server (§5 code 4).
    Internal = 4,
    /// Unknown message type (§5 code 5, forward-compat rule §1.3).
    Unsupported = 5,
}

impl ErrorCode {
    fn from_u8(b: u8) -> Option<Self> {
        Some(match b {
            1 => ErrorCode::BadRequest,
            2 => ErrorCode::Overloaded,
            3 => ErrorCode::ShuttingDown,
            4 => ErrorCode::Internal,
            5 => ErrorCode::Unsupported,
            _ => return None,
        })
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ErrorCode::BadRequest => "bad request",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::ShuttingDown => "shutting down",
            ErrorCode::Internal => "internal error",
            ErrorCode::Unsupported => "unsupported message",
        };
        f.write_str(name)
    }
}

/// Degraded shard coverage attached to a TOPK response (§4.1, flags
/// bit 2): which shards of a sharded backend answered this request. Only
/// present when coverage is *partial* — a full-coverage (or unsharded)
/// answer keeps bit 2 clear and carries no extra bytes, so the v1 TOPK
/// encoding is unchanged for the healthy path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Coverage {
    /// Total shard count of the deployment (1..=64).
    pub shards: u16,
    /// Bit `s` set ⇔ shard `s` contributed its partition to the answer.
    pub answered: u64,
}

impl Coverage {
    /// Shard ids that did **not** contribute (their partitions are
    /// missing from the answer).
    pub fn skipped(&self) -> Vec<usize> {
        (0..self.shards as usize)
            .filter(|s| self.answered & (1u64 << s) == 0)
            .collect()
    }
}

/// One decoded protocol message (the payload past the request id, §2.3).
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// QUERY (§3.1): one top-k request with its budget header.
    Query {
        /// Budget deadline in milliseconds from admission; `0` = none.
        deadline_ms: u32,
        /// Budget cap on Definition-9 cost; `0` = none.
        max_cost: u64,
        /// Number of results requested.
        k: u32,
        /// Query weight vector (`dims` is implied by the length).
        weights: Vec<f64>,
    },
    /// SHARD_QUERY (§3.5): a router-to-shard-node top-k request. Body is
    /// identical to QUERY; the reply is a TOPK frame carrying the scores
    /// extension (§4.1 flags bit 3) so the router can k-way merge
    /// per-shard answers bit-identically. `deadline_ms` here is the
    /// *carved per-shard* budget, not the client's request deadline.
    ShardQuery {
        /// Remaining carved per-shard deadline in milliseconds; `0` = none.
        deadline_ms: u32,
        /// Budget cap on Definition-9 cost; `0` = none.
        max_cost: u64,
        /// Number of results requested.
        k: u32,
        /// Query weight vector (`dims` is implied by the length).
        weights: Vec<f64>,
    },
    /// METRICS request (§3.2): empty body.
    MetricsRequest,
    /// PING (§3.3): empty body.
    Ping,
    /// DRAIN (§3.4): begin a graceful drain.
    Drain,
    /// TOPK response (§4.1): answer ids plus the paper cost split.
    Topk {
        /// Truncation reason: `0` complete, `1` deadline, `2` cost cap,
        /// `3` cancelled (§4.1 flags bits 0–1).
        truncated: u8,
        /// Real tuples scored (Definition 9, real part).
        evaluated: u64,
        /// Zero-layer pseudo-tuples scored (Definition 9, pseudo part).
        pseudo_evaluated: u64,
        /// Answer ids, ascending `(score, id)`; a true prefix when
        /// `truncated != 0`.
        ids: Vec<u64>,
        /// Degraded shard coverage (§4.1 flags bit 2): `Some` exactly
        /// when one or more shards were skipped, in which case the ids
        /// are the exact top-k over the answering shards' partitions.
        coverage: Option<Coverage>,
        /// Per-id scores (§4.1 flags bit 3): `Some` only in replies to
        /// SHARD_QUERY, one `f64` per id in the same order, so a remote
        /// router can merge on `(score, id)` exactly like the in-process
        /// merge. Must be the same length as `ids` when present.
        scores: Option<Vec<f64>>,
    },
    /// METRICS response (§4.2): Prometheus text exposition.
    MetricsReply(
        /// The exposition body, UTF-8.
        String,
    ),
    /// PONG (§4.3): empty body.
    Pong,
    /// DRAINING (§4.4): drain acknowledged.
    Draining,
    /// ERROR (§5): a coded failure scoped to `request_id`.
    Error {
        /// What went wrong (§5 table).
        code: ErrorCode,
        /// Human-readable detail; not part of the contract.
        message: String,
    },
}

/// Decode-side failure.
#[derive(Debug)]
pub enum WireError {
    /// The underlying stream failed (includes EOF mid-frame, §2.2).
    Io(io::Error),
    /// The frame violated the spec: bad length, CRC mismatch, truncated
    /// or over-long body (§2.1–§2.2). The stream is unreadable past it.
    Corrupt(String),
    /// Sound frame, unknown type byte (§5.3): the connection survives;
    /// a server answers `ERR_UNSUPPORTED` for this `request_id`.
    UnknownType {
        /// Request id parsed from the sound payload header.
        request_id: u64,
        /// The unrecognized type byte.
        type_byte: u8,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "io error: {e}"),
            WireError::Corrupt(msg) => write!(f, "corrupt frame: {msg}"),
            WireError::UnknownType { type_byte, .. } => {
                write!(f, "unknown message type 0x{type_byte:02x}")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

fn corrupt(msg: impl Into<String>) -> WireError {
    WireError::Corrupt(msg.into())
}

/// Encodes `msg` for `request_id` as one complete frame (§2): length
/// prefix, payload CRC, payload.
pub fn encode_frame(request_id: u64, msg: &Message) -> Vec<u8> {
    let mut payload = Vec::with_capacity(HEADER + 16);
    payload.push(type_byte(msg));
    payload.extend_from_slice(&request_id.to_le_bytes());
    encode_body(msg, &mut payload);
    debug_assert!(payload.len() <= MAX_PAYLOAD, "oversized frame");
    let mut frame = Vec::with_capacity(8 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

fn type_byte(msg: &Message) -> u8 {
    match msg {
        Message::Query { .. } => ty::QUERY,
        Message::ShardQuery { .. } => ty::SHARD_QUERY,
        Message::MetricsRequest => ty::METRICS_REQ,
        Message::Ping => ty::PING,
        Message::Drain => ty::DRAIN,
        Message::Topk { .. } => ty::TOPK,
        Message::MetricsReply(_) => ty::METRICS_REP,
        Message::Pong => ty::PONG,
        Message::Draining => ty::DRAINING,
        Message::Error { .. } => ty::ERROR,
    }
}

fn encode_body(msg: &Message, out: &mut Vec<u8>) {
    match msg {
        Message::Query {
            deadline_ms,
            max_cost,
            k,
            weights,
        }
        | Message::ShardQuery {
            deadline_ms,
            max_cost,
            k,
            weights,
        } => {
            out.extend_from_slice(&deadline_ms.to_le_bytes());
            out.extend_from_slice(&max_cost.to_le_bytes());
            out.extend_from_slice(&k.to_le_bytes());
            out.extend_from_slice(&(weights.len() as u16).to_le_bytes());
            for w in weights {
                out.extend_from_slice(&w.to_le_bytes());
            }
        }
        Message::Topk {
            truncated,
            evaluated,
            pseudo_evaluated,
            ids,
            coverage,
            scores,
        } => {
            debug_assert!(*truncated <= 3, "truncated reason outside flag bits 0-1");
            debug_assert!(
                scores.as_ref().is_none_or(|s| s.len() == ids.len()),
                "scores must pair with ids one-to-one"
            );
            let flags = truncated
                | if coverage.is_some() { 0x04 } else { 0 }
                | if scores.is_some() { 0x08 } else { 0 };
            out.push(flags);
            out.extend_from_slice(&evaluated.to_le_bytes());
            out.extend_from_slice(&pseudo_evaluated.to_le_bytes());
            out.extend_from_slice(&(ids.len() as u32).to_le_bytes());
            for id in ids {
                out.extend_from_slice(&id.to_le_bytes());
            }
            if let Some(scores) = scores {
                for s in scores {
                    out.extend_from_slice(&s.to_le_bytes());
                }
            }
            if let Some(cov) = coverage {
                out.extend_from_slice(&cov.shards.to_le_bytes());
                out.extend_from_slice(&cov.answered.to_le_bytes());
            }
        }
        Message::MetricsReply(text) => out.extend_from_slice(text.as_bytes()),
        Message::Error { code, message } => {
            out.push(*code as u8);
            out.extend_from_slice(message.as_bytes());
        }
        Message::MetricsRequest
        | Message::Ping
        | Message::Drain
        | Message::Pong
        | Message::Draining => {}
    }
}

/// A little-endian cursor over a decoded payload body.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.buf.len() {
            return Err(corrupt(format!(
                "body truncated: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn finish(&self) -> Result<(), WireError> {
        if self.pos != self.buf.len() {
            return Err(corrupt(format!(
                "{} trailing bytes past the message body",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

/// Decodes one payload (everything past the 8-byte frame header) into
/// `(request_id, message)`. The CRC must already have been verified.
pub fn decode_payload(payload: &[u8]) -> Result<(u64, Message), WireError> {
    if payload.len() < HEADER {
        return Err(corrupt(format!(
            "payload shorter than the {HEADER}-byte header: {} bytes",
            payload.len()
        )));
    }
    let mut c = Cursor {
        buf: payload,
        pos: 0,
    };
    let type_byte = c.u8()?;
    let request_id = c.u64()?;
    let msg = match type_byte {
        ty::QUERY | ty::SHARD_QUERY => {
            let deadline_ms = c.u32()?;
            let max_cost = c.u64()?;
            let k = c.u32()?;
            let dims = c.u16()? as usize;
            let mut weights = Vec::with_capacity(dims);
            for _ in 0..dims {
                weights.push(c.f64()?);
            }
            if type_byte == ty::SHARD_QUERY {
                Message::ShardQuery {
                    deadline_ms,
                    max_cost,
                    k,
                    weights,
                }
            } else {
                Message::Query {
                    deadline_ms,
                    max_cost,
                    k,
                    weights,
                }
            }
        }
        ty::METRICS_REQ => Message::MetricsRequest,
        ty::PING => Message::Ping,
        ty::DRAIN => Message::Drain,
        ty::TOPK => {
            let flags = c.u8()?;
            if flags & !0x0F != 0 {
                return Err(corrupt(format!(
                    "reserved TOPK flag bits set: {flags:#04x}"
                )));
            }
            let truncated = flags & 0x03;
            let evaluated = c.u64()?;
            let pseudo_evaluated = c.u64()?;
            let count = c.u32()? as usize;
            // An honest count can't outrun the payload that carries it.
            if count > (payload.len() - c.pos) / 8 {
                return Err(corrupt(format!("id count {count} exceeds the body")));
            }
            let mut ids = Vec::with_capacity(count);
            for _ in 0..count {
                ids.push(c.u64()?);
            }
            let scores = if flags & 0x08 != 0 {
                // One f64 per id (§4.1 bit 3): the count is shared, so
                // the same outrun check bounds it.
                if count > (payload.len() - c.pos) / 8 {
                    return Err(corrupt(format!("score count {count} exceeds the body")));
                }
                let mut scores = Vec::with_capacity(count);
                for _ in 0..count {
                    scores.push(c.f64()?);
                }
                Some(scores)
            } else {
                None
            };
            let coverage = if flags & 0x04 != 0 {
                let shards = c.u16()?;
                let answered = c.u64()?;
                if shards == 0 || shards > 64 {
                    return Err(corrupt(format!("shard count {shards} outside 1..=64")));
                }
                let valid = if shards == 64 {
                    u64::MAX
                } else {
                    (1u64 << shards) - 1
                };
                if answered & !valid != 0 {
                    return Err(corrupt(format!(
                        "answered mask {answered:#x} has bits past shard count {shards}"
                    )));
                }
                if answered == valid {
                    return Err(corrupt(
                        "full coverage must be encoded without the coverage extension",
                    ));
                }
                Some(Coverage { shards, answered })
            } else {
                None
            };
            Message::Topk {
                truncated,
                evaluated,
                pseudo_evaluated,
                ids,
                coverage,
                scores,
            }
        }
        ty::METRICS_REP => {
            let rest = c.take(payload.len() - c.pos)?;
            let text = String::from_utf8(rest.to_vec())
                .map_err(|_| corrupt("metrics body is not UTF-8"))?;
            Message::MetricsReply(text)
        }
        ty::PONG => Message::Pong,
        ty::DRAINING => Message::Draining,
        ty::ERROR => {
            let code_byte = c.u8()?;
            let code = ErrorCode::from_u8(code_byte)
                .ok_or_else(|| corrupt(format!("unknown error code {code_byte}")))?;
            let rest = c.take(payload.len() - c.pos)?;
            let message = String::from_utf8(rest.to_vec())
                .map_err(|_| corrupt("error message is not UTF-8"))?;
            Message::Error { code, message }
        }
        other => {
            return Err(WireError::UnknownType {
                request_id,
                type_byte: other,
            })
        }
    };
    c.finish()?;
    Ok((request_id, msg))
}

/// Reads one frame from `r` (§2): validates the length bound and the
/// payload CRC, then decodes. An EOF *before the first header byte*
/// surfaces as `Io(UnexpectedEof)` — callers treat it as a clean
/// disconnect; EOF anywhere later is the torn-tail case.
pub fn read_frame<R: Read>(r: &mut R) -> Result<(u64, Message), WireError> {
    let mut header = [0u8; 8];
    r.read_exact(&mut header)?;
    let len = u32::from_le_bytes(header[0..4].try_into().unwrap()) as usize;
    let want_crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
    if len == 0 || len > MAX_PAYLOAD {
        return Err(corrupt(format!(
            "frame length {len} outside 1..={MAX_PAYLOAD}"
        )));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let got_crc = crc32(&payload);
    if got_crc != want_crc {
        return Err(corrupt(format!(
            "payload crc mismatch: stored {want_crc:#010x}, computed {got_crc:#010x}"
        )));
    }
    decode_payload(&payload)
}

/// Writes one encoded frame to `w` and flushes it.
pub fn write_frame<W: Write>(w: &mut W, request_id: u64, msg: &Message) -> io::Result<()> {
    w.write_all(&encode_frame(request_id, msg))?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(id: u64, msg: Message) {
        let frame = encode_frame(id, &msg);
        let (got_id, got) = read_frame(&mut &frame[..]).expect("roundtrip");
        assert_eq!(got_id, id);
        assert_eq!(got, msg);
    }

    #[test]
    fn every_message_roundtrips() {
        roundtrip(
            7,
            Message::Query {
                deadline_ms: 250,
                max_cost: 0,
                k: 3,
                weights: vec![0.25, 0.75],
            },
        );
        roundtrip(
            17,
            Message::ShardQuery {
                deadline_ms: 40,
                max_cost: 900,
                k: 5,
                weights: vec![1.0, 0.0, 0.5],
            },
        );
        roundtrip(1, Message::MetricsRequest);
        roundtrip(2, Message::Ping);
        roundtrip(3, Message::Drain);
        roundtrip(
            7,
            Message::Topk {
                truncated: 0,
                evaluated: 5,
                pseudo_evaluated: 1,
                ids: vec![12, 4, 9],
                coverage: None,
                scores: None,
            },
        );
        roundtrip(
            8,
            Message::Topk {
                truncated: 1,
                evaluated: 5,
                pseudo_evaluated: 0,
                ids: vec![3],
                coverage: Some(Coverage {
                    shards: 4,
                    answered: 0b1011,
                }),
                scores: None,
            },
        );
        roundtrip(
            10,
            Message::Topk {
                truncated: 0,
                evaluated: 9,
                pseudo_evaluated: 2,
                ids: vec![12, 4],
                coverage: None,
                scores: Some(vec![3.5, -0.25]),
            },
        );
        roundtrip(
            11,
            Message::Topk {
                truncated: 2,
                evaluated: 9,
                pseudo_evaluated: 2,
                ids: vec![12],
                coverage: Some(Coverage {
                    shards: 2,
                    answered: 0b01,
                }),
                scores: Some(vec![3.5]),
            },
        );
        roundtrip(4, Message::MetricsReply("# HELP x\nx 1\n".into()));
        roundtrip(5, Message::Pong);
        roundtrip(6, Message::Draining);
        roundtrip(
            9,
            Message::Error {
                code: ErrorCode::Overloaded,
                message: "queue full".into(),
            },
        );
    }

    #[test]
    fn zero_and_oversized_lengths_are_rejected() {
        let mut bad = encode_frame(1, &Message::Ping);
        bad[0..4].copy_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            read_frame(&mut &bad[..]),
            Err(WireError::Corrupt(_))
        ));
        let mut huge = encode_frame(1, &Message::Ping);
        huge[0..4].copy_from_slice(&((MAX_PAYLOAD as u32) + 1).to_le_bytes());
        assert!(matches!(
            read_frame(&mut &huge[..]),
            Err(WireError::Corrupt(_))
        ));
    }

    #[test]
    fn unknown_type_reports_the_request_id() {
        let mut frame = encode_frame(42, &Message::Ping);
        frame[8] = 0x55; // unknown type byte
        let payload = frame[8..].to_vec();
        frame[4..8].copy_from_slice(&crc32(&payload).to_le_bytes());
        match read_frame(&mut &frame[..]) {
            Err(WireError::UnknownType {
                request_id,
                type_byte,
            }) => {
                assert_eq!(request_id, 42);
                assert_eq!(type_byte, 0x55);
            }
            other => panic!("want UnknownType, got {other:?}"),
        }
    }

    #[test]
    fn trailing_garbage_is_corrupt() {
        let mut frame = encode_frame(1, &Message::Ping);
        // Append one byte inside the declared payload and re-checksum.
        frame.push(0xAB);
        let len = (frame.len() - 8) as u32;
        frame[0..4].copy_from_slice(&len.to_le_bytes());
        let payload = frame[8..].to_vec();
        frame[4..8].copy_from_slice(&crc32(&payload).to_le_bytes());
        assert!(matches!(
            read_frame(&mut &frame[..]),
            Err(WireError::Corrupt(_))
        ));
    }

    #[test]
    fn coverage_flags_and_mask_are_validated() {
        let base = Message::Topk {
            truncated: 0,
            evaluated: 1,
            pseudo_evaluated: 0,
            ids: vec![7],
            coverage: Some(Coverage {
                shards: 3,
                answered: 0b101,
            }),
            scores: None,
        };
        // Mutating the flags byte (payload offset 9 → frame offset 17)
        // or the coverage tail must be caught by the decoder.
        let recrc = |frame: &mut Vec<u8>| {
            let payload = frame[8..].to_vec();
            frame[4..8].copy_from_slice(&crc32(&payload).to_le_bytes());
        };

        // Reserved flag bits 4-7 are rejected.
        let mut frame = encode_frame(1, &base);
        frame[17] |= 0x10;
        recrc(&mut frame);
        assert!(matches!(
            read_frame(&mut &frame[..]),
            Err(WireError::Corrupt(_))
        ));

        // A mask with bits past the shard count is rejected. The
        // answered mask is the last 8 bytes of the frame.
        let mut frame = encode_frame(1, &base);
        let n = frame.len();
        frame[n - 8..].copy_from_slice(&0b1101u64.to_le_bytes());
        recrc(&mut frame);
        assert!(matches!(
            read_frame(&mut &frame[..]),
            Err(WireError::Corrupt(_))
        ));

        // Full coverage spelled through the extension is rejected: the
        // canonical encoding of a full answer is flag bit 2 clear.
        let mut frame = encode_frame(1, &base);
        let n = frame.len();
        frame[n - 8..].copy_from_slice(&0b111u64.to_le_bytes());
        recrc(&mut frame);
        assert!(matches!(
            read_frame(&mut &frame[..]),
            Err(WireError::Corrupt(_))
        ));

        // And the happy path still decodes with skipped() naming shard 1.
        let frame = encode_frame(1, &base);
        let (_, msg) = read_frame(&mut &frame[..]).unwrap();
        match msg {
            Message::Topk { coverage, .. } => {
                assert_eq!(coverage.unwrap().skipped(), vec![1]);
            }
            other => panic!("want Topk, got {other:?}"),
        }
    }

    #[test]
    fn topk_count_cannot_outrun_the_body() {
        let msg = Message::Topk {
            truncated: 0,
            evaluated: 1,
            pseudo_evaluated: 0,
            ids: vec![1, 2],
            coverage: None,
            scores: None,
        };
        let mut frame = encode_frame(1, &msg);
        // count lives at payload offset 26 → frame offset 34.
        frame[34..38].copy_from_slice(&u32::MAX.to_le_bytes());
        let payload = frame[8..].to_vec();
        frame[4..8].copy_from_slice(&crc32(&payload).to_le_bytes());
        assert!(matches!(
            read_frame(&mut &frame[..]),
            Err(WireError::Corrupt(_))
        ));
    }

    #[test]
    fn score_extension_cannot_outrun_the_body() {
        // A frame whose scores flag is set but whose body holds ids only:
        // the shared count then exceeds what remains for scores.
        let msg = Message::Topk {
            truncated: 0,
            evaluated: 1,
            pseudo_evaluated: 0,
            ids: vec![1, 2],
            coverage: None,
            scores: None,
        };
        let mut frame = encode_frame(1, &msg);
        frame[17] |= 0x08;
        let payload = frame[8..].to_vec();
        frame[4..8].copy_from_slice(&crc32(&payload).to_le_bytes());
        assert!(matches!(
            read_frame(&mut &frame[..]),
            Err(WireError::Corrupt(_))
        ));
    }
}
