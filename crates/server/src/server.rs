//! The index service: accept loop, admission control, adaptive
//! micro-batching, graceful drain.
//!
//! Architecture (DESIGN.md §8): one reader thread per connection parses
//! frames (`PROTOCOL.md` §2) and *admits* queries into a single bounded
//! queue; a fixed pool of worker threads pulls micro-batches out of that
//! queue and answers them through [`BatchExecutor::run_guarded_each`],
//! each request under its own [`QueryBudget`] built from the frame's
//! budget header (§3.1) at admission time — so time spent queued counts
//! against the client's deadline. When the queue is full, admission sheds
//! the request with a fast `Overloaded` reply (§5.1) instead of letting
//! latency collapse; when a batch fills to `batch_max` or ages past
//! `batch_window` — whichever comes first — it flushes.

use crate::pinger::{HealthPinger, PingerConfig};
use crate::protocol::{
    read_frame, write_frame, Coverage, ErrorCode, Message, WireError, HELLO, MAX_PAYLOAD,
};
use crate::remote::RemoteRouter;
use crate::shard::ServedShard;
use drtopk_common::Weights;
use drtopk_core::{
    BatchExecutor, DualLayerIndex, QueryBudget, ResultCache, ShardHealth, ShardProbe, ShardRouter,
    TruncateReason,
};
use drtopk_obs::metrics;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering::SeqCst};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Failpoint visited once per accepted connection, right after the hello
/// exchange. The chaos suite arms it to prove a poisoned accept path
/// degrades to a graceful connection-scoped ERROR frame (`PROTOCOL.md`
/// §5.2: `request_id = 0`), never a hang or a silent drop.
pub const ACCEPT_FAILPOINT: &str = "server::accept";

/// How often blocked connection readers wake to poll the shutdown flag.
const READ_POLL: Duration = Duration::from_millis(25);

/// Configuration for [`Server::start`], built fluently.
///
/// ```
/// use drtopk_server::ServerConfig;
/// use std::time::Duration;
///
/// let cfg = ServerConfig::new()
///     .addr("127.0.0.1:0") // port 0: pick an ephemeral port
///     .workers(2)
///     .batch_max(64)
///     .batch_window(Duration::from_micros(200))
///     .queue_depth(512)
///     .cache(true);
/// assert_eq!(cfg.get_workers(), 2);
/// assert_eq!(cfg.get_queue_depth(), 512);
/// ```
///
/// Defaults favor a small host: 2 workers, batches of up to 32 requests
/// flushed after at most 200 µs, a queue of 1024, no cache.
///
/// ```
/// let cfg = drtopk_server::ServerConfig::new();
/// assert_eq!(cfg.get_batch_max(), 32);
/// assert!(!cfg.get_cache());
/// ```
#[derive(Debug, Clone)]
pub struct ServerConfig {
    addr: String,
    workers: usize,
    batch_max: usize,
    batch_window: Duration,
    queue_depth: usize,
    cache: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            batch_max: 32,
            batch_window: Duration::from_micros(200),
            queue_depth: 1024,
            cache: false,
        }
    }
}

impl ServerConfig {
    /// The default configuration (see the type-level docs).
    pub fn new() -> Self {
        Self::default()
    }

    /// Listen address, e.g. `"127.0.0.1:7070"`; port `0` binds an
    /// ephemeral port (read it back from [`ServerHandle::addr`]).
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Number of batch worker threads (minimum 1).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Flush a micro-batch once it holds this many requests (minimum 1).
    pub fn batch_max(mut self, batch_max: usize) -> Self {
        self.batch_max = batch_max.max(1);
        self
    }

    /// Flush a micro-batch once its oldest request has waited this long,
    /// even if it is below [`batch_max`](Self::batch_max). Zero disables
    /// batching-by-age (every flush is size-1 unless requests are already
    /// queued).
    pub fn batch_window(mut self, window: Duration) -> Self {
        self.batch_window = window;
        self
    }

    /// Admission bound: a query arriving while this many are already
    /// queued is shed with a fast `Overloaded` reply (`PROTOCOL.md`
    /// §5.1). `0` admits nothing — every query sheds (useful in tests).
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Serve repeated weight vectors from a shared [`ResultCache`]: hits
    /// are answered at admission time without ever touching the queue.
    pub fn cache(mut self, on: bool) -> Self {
        self.cache = on;
        self
    }

    /// Configured listen address.
    pub fn get_addr(&self) -> &str {
        &self.addr
    }

    /// Configured worker count.
    pub fn get_workers(&self) -> usize {
        self.workers
    }

    /// Configured batch-size flush bound.
    pub fn get_batch_max(&self) -> usize {
        self.batch_max
    }

    /// Configured batch-age flush bound.
    pub fn get_batch_window(&self) -> Duration {
        self.batch_window
    }

    /// Configured admission bound.
    pub fn get_queue_depth(&self) -> usize {
        self.queue_depth
    }

    /// Whether the result cache is enabled.
    pub fn get_cache(&self) -> bool {
        self.cache
    }
}

/// One admitted query waiting in the shared queue.
struct Pending {
    request_id: u64,
    weights: Weights,
    k: usize,
    budget: QueryBudget,
    admitted: Instant,
    writer: Arc<ConnWriter>,
    /// The request was a SHARD_QUERY (`PROTOCOL.md` §3.5): the reply
    /// must carry per-id scores for the router's k-way merge.
    want_scores: bool,
}

/// The reply side of one connection: workers answering a micro-batch
/// write frames under the stream lock (replies may interleave across
/// requests of different batches; `request_id` pairs them back up,
/// `PROTOCOL.md` §2.3).
struct ConnWriter {
    stream: Mutex<TcpStream>,
    /// Admitted-but-unanswered queries on this connection; the reader
    /// thread lingers on shutdown until this drains to zero so every
    /// admitted query gets its reply before the socket closes.
    outstanding: AtomicUsize,
}

impl ConnWriter {
    fn send(&self, request_id: u64, msg: &Message) {
        let mut stream = self.stream.lock().unwrap();
        // A vanished client is its own problem; the server presses on.
        let _ = write_frame(&mut *stream, request_id, msg);
    }
}

/// What answers the queries: one monolithic index, or a fault-tolerant
/// router over per-shard indexes (DESIGN.md §9).
enum Backend {
    /// A single static [`DualLayerIndex`], optionally cache-fronted.
    Single {
        index: Arc<DualLayerIndex>,
        cache: Option<ResultCache>,
    },
    /// A [`ShardRouter`] over served shards; degraded coverage travels
    /// to clients via the TOPK coverage extension (`PROTOCOL.md` §4.1).
    Sharded {
        router: Arc<ShardRouter<ServedShard>>,
    },
    /// One shard of a multi-node deployment, answering SHARD_QUERY
    /// frames (scores attached) from a remote router node.
    ShardNode { shard: Arc<ServedShard> },
    /// The router node of a multi-node deployment: fan-out over replica
    /// sets of remote shard endpoints, health driven by probe outcomes
    /// and the background pinger.
    Remote { router: Arc<RemoteRouter> },
}

impl Backend {
    fn dims(&self) -> usize {
        match self {
            Backend::Single { index, .. } => index.dims(),
            Backend::Sharded { router } => router.dims(),
            Backend::ShardNode { shard } => shard.dims(),
            Backend::Remote { router } => router.dims(),
        }
    }
}

/// State shared by the accept loop, connection readers, and workers.
struct Shared {
    backend: Backend,
    cfg: ServerConfig,
    queue: Mutex<VecDeque<Pending>>,
    work_ready: Condvar,
    shutdown: AtomicBool,
    local_addr: SocketAddr,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(SeqCst)
    }

    /// Flips the shutdown flag and wakes everyone who might be blocked on
    /// it: workers (condvar) and the accept loop (a self-connection).
    fn begin_drain(&self) {
        if self.shutdown.swap(true, SeqCst) {
            return; // already draining
        }
        self.work_ready.notify_all();
        let _ = TcpStream::connect(self.local_addr);
    }

    fn prometheus_text(&self) -> String {
        let mut out = String::new();
        match &self.backend {
            Backend::Single { index, .. } => {
                let s = index.stats();
                let gauges: [(&str, &str, u64); 4] = [
                    ("tuples", "Tuples in the indexed relation", s.n as u64),
                    ("dims", "Attribute dimensionality", s.dims as u64),
                    ("coarse_layers", "Coarse layers", s.coarse_layers as u64),
                    ("fine_sublayers", "Fine sublayers", s.fine_layers as u64),
                ];
                for (name, help, value) in gauges {
                    drtopk_obs::snapshot::prom_gauge(
                        &mut out,
                        &format!("drtopk_index_{name}"),
                        help,
                        value as f64,
                    );
                }
            }
            Backend::Sharded { router } => {
                let tuples: usize = (0..router.shards())
                    .filter_map(|s| router.shard(s).with_store(|st| st.len()))
                    .sum();
                drtopk_obs::snapshot::prom_gauge(
                    &mut out,
                    "drtopk_index_tuples",
                    "Live tuples across all shards",
                    tuples as f64,
                );
                drtopk_obs::snapshot::prom_gauge(
                    &mut out,
                    "drtopk_index_dims",
                    "Attribute dimensionality",
                    router.dims() as f64,
                );
                drtopk_obs::snapshot::prom_gauge(
                    &mut out,
                    "drtopk_shards",
                    "Shard count of the deployment",
                    router.shards() as f64,
                );
                shard_health_series(&mut out, &router.health());
            }
            Backend::ShardNode { shard } => {
                let tuples = shard.with_store(|st| st.len()).unwrap_or(0);
                drtopk_obs::snapshot::prom_gauge(
                    &mut out,
                    "drtopk_index_tuples",
                    "Live tuples on this shard node",
                    tuples as f64,
                );
                drtopk_obs::snapshot::prom_gauge(
                    &mut out,
                    "drtopk_index_dims",
                    "Attribute dimensionality",
                    shard.dims() as f64,
                );
                drtopk_obs::snapshot::prom_gauge(
                    &mut out,
                    "drtopk_shard_id",
                    "Logical shard this node serves",
                    shard.id() as f64,
                );
            }
            Backend::Remote { router } => {
                drtopk_obs::snapshot::prom_gauge(
                    &mut out,
                    "drtopk_index_dims",
                    "Attribute dimensionality",
                    router.dims() as f64,
                );
                drtopk_obs::snapshot::prom_gauge(
                    &mut out,
                    "drtopk_shards",
                    "Shard count of the deployment",
                    router.shards() as f64,
                );
                shard_health_series(&mut out, &router.health());
                // Per-endpoint liveness as the pinger/prober believes it.
                // The health CLI and the runbook's endpoint table key off
                // this series (OPERATIONS.md §10).
                out.push_str("# HELP drtopk_endpoint_up Endpoint believed up (1) or down (0)\n");
                out.push_str("# TYPE drtopk_endpoint_up gauge\n");
                for s in 0..router.shards() {
                    let set = router.shard(s);
                    for i in 0..set.len() {
                        out.push_str(&format!(
                            "drtopk_endpoint_up{{shard=\"{s}\",replica=\"{i}\",addr=\"{}\"}} {}\n",
                            set.replica(i).addr(),
                            u8::from(set.is_up(i)),
                        ));
                    }
                }
            }
        }
        out.push_str(&metrics().snapshot().to_prometheus());
        out
    }
}

/// Per-shard health as labeled gauges: 0 = up, 1 = degraded, 2 = down.
/// The runbook's alerting keys off this series (OPERATIONS.md).
fn shard_health_series(out: &mut String, health: &[ShardHealth]) {
    out.push_str("# HELP drtopk_shard_health Shard health (0 up, 1 degraded, 2 down)\n");
    out.push_str("# TYPE drtopk_shard_health gauge\n");
    for (s, h) in health.iter().enumerate() {
        let v = match h {
            ShardHealth::Up => 0,
            ShardHealth::Degraded => 1,
            ShardHealth::Down => 2,
        };
        out.push_str(&format!("drtopk_shard_health{{shard=\"{s}\"}} {v}\n"));
    }
}

/// A running index service. Dropping the handle does **not** stop the
/// server; call [`shutdown`](Self::shutdown) (or send a DRAIN frame,
/// `PROTOCOL.md` §3.4) for a graceful drain, or [`wait`](Self::wait) to
/// block until one happens.
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    /// Background health pinger of a router node (stopped on shutdown).
    pinger: Option<HealthPinger>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.shared.local_addr)
            .field("draining", &self.shared.shutting_down())
            .finish()
    }
}

impl ServerHandle {
    /// The bound listen address (the actual port when the config asked
    /// for port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// The shard router behind this server, when it was started with
    /// [`Server::start_sharded`] — the hook for admin paths (cordon,
    /// rejoin after recovery) and for tests to reach shard state.
    pub fn router(&self) -> Option<&Arc<ShardRouter<ServedShard>>> {
        match &self.shared.backend {
            Backend::Sharded { router } => Some(router),
            _ => None,
        }
    }

    /// The remote router behind this server, when it was started with
    /// [`Server::start_router`] — the hook for admin paths and for tests
    /// to reach endpoint beliefs and shard health.
    pub fn remote_router(&self) -> Option<&Arc<RemoteRouter>> {
        match &self.shared.backend {
            Backend::Remote { router } => Some(router),
            _ => None,
        }
    }

    /// Graceful drain: stop accepting, answer everything already
    /// admitted, reply `ShuttingDown` to queries that arrive after the
    /// flag flips, then join every thread. Idempotent.
    pub fn shutdown(mut self) {
        self.shared.begin_drain();
        self.join();
    }

    /// Blocks until the server drains (via [`shutdown`](Self::shutdown)
    /// from another thread, or a client's DRAIN frame) and every thread
    /// has exited.
    pub fn wait(mut self) {
        self.join();
    }

    fn join(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Workers drain the queue before exiting; joining them guarantees
        // every admitted query has been answered. Connection reader
        // threads then observe `outstanding == 0` and exit on their next
        // poll tick; they hold only an `Arc<Shared>` and their sockets,
        // so letting the OS reap them after the listener is gone is safe.
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // The pinger outlives the serving threads: `wait()` routes
        // through here while the server is still live, and stopping the
        // pinger before the accept loop exits would silently disable
        // health tracking for the whole run.
        if let Some(p) = self.pinger.take() {
            p.stop();
        }
    }
}

/// The index service entry point.
///
/// [`Server::start`] binds, spawns the accept loop and worker pool, and
/// returns immediately with a [`ServerHandle`].
#[derive(Debug)]
pub struct Server;

impl Server {
    /// Starts serving `index` per `cfg`. Fails only if the listen socket
    /// cannot be bound.
    pub fn start(index: Arc<DualLayerIndex>, cfg: ServerConfig) -> io::Result<ServerHandle> {
        let backend = Backend::Single {
            cache: cfg.cache.then(ResultCache::default),
            index,
        };
        Self::start_backend(backend, cfg)
    }

    /// Starts serving a sharded deployment: queries fan out through the
    /// router, shard failures degrade coverage instead of failing the
    /// request, and replies carry the coverage extension (`PROTOCOL.md`
    /// §4.1 flags bit 2) whenever a shard was skipped.
    pub fn start_sharded(
        router: Arc<ShardRouter<ServedShard>>,
        cfg: ServerConfig,
    ) -> io::Result<ServerHandle> {
        Self::start_backend(Backend::Sharded { router }, cfg)
    }

    /// Starts one shard node of a multi-node deployment: this process
    /// serves exactly one shard's partition and answers SHARD_QUERY
    /// frames (`PROTOCOL.md` §3.5) with scores attached, for a router
    /// node to merge.
    pub fn start_shard_node(
        shard: Arc<ServedShard>,
        cfg: ServerConfig,
    ) -> io::Result<ServerHandle> {
        Self::start_backend(Backend::ShardNode { shard }, cfg)
    }

    /// Starts the router node of a multi-node deployment: client QUERY
    /// frames fan out over the wire to the topology's shard endpoints,
    /// with replica failover and (when `pinger` is set) background
    /// health pings feeding the router's Up/Degraded/Down slots.
    pub fn start_router(
        router: Arc<RemoteRouter>,
        pinger: Option<PingerConfig>,
        cfg: ServerConfig,
    ) -> io::Result<ServerHandle> {
        let pinger = pinger.map(|p| HealthPinger::start(Arc::clone(&router), p));
        let mut handle = Self::start_backend(Backend::Remote { router }, cfg)?;
        handle.pinger = pinger;
        Ok(handle)
    }

    fn start_backend(backend: Backend, cfg: ServerConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(cfg.get_addr())?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            backend,
            cfg,
            queue: Mutex::new(VecDeque::new()),
            work_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            local_addr,
        });

        let workers = (0..shared.cfg.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("drtopk-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();

        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("drtopk-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared))
                .expect("spawn accept loop")
        };

        Ok(ServerHandle {
            shared,
            accept: Some(accept),
            workers,
            pinger: None,
        })
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutting_down() {
            break; // woken by begin_drain's self-connection
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        let _ = std::thread::Builder::new()
            .name("drtopk-conn".to_string())
            .spawn(move || handle_connection(stream, &shared));
    }
}

/// Accumulates stream bytes and carves complete frames out of the front,
/// so a poll-timeout can never desynchronize framing mid-header (the
/// partial bytes stay buffered for the next poll).
struct FrameBuf {
    acc: Vec<u8>,
}

enum PollEvent {
    Frame(u64, Message),
    Unknown(u64, u8),
    Timeout,
    Eof,
    Corrupt(String),
    Io,
}

impl FrameBuf {
    fn new() -> Self {
        FrameBuf { acc: Vec::new() }
    }

    fn poll(&mut self, stream: &mut TcpStream) -> PollEvent {
        loop {
            if let Some(ev) = self.try_decode() {
                return ev;
            }
            let mut tmp = [0u8; 4096];
            match stream.read(&mut tmp) {
                Ok(0) => {
                    return if self.acc.is_empty() {
                        PollEvent::Eof
                    } else {
                        PollEvent::Corrupt("eof mid-frame".to_string())
                    }
                }
                Ok(n) => self.acc.extend_from_slice(&tmp[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return PollEvent::Timeout
                }
                Err(_) => return PollEvent::Io,
            }
        }
    }

    fn try_decode(&mut self) -> Option<PollEvent> {
        if self.acc.len() < 8 {
            return None;
        }
        let len = u32::from_le_bytes(self.acc[0..4].try_into().unwrap()) as usize;
        if len == 0 || len > MAX_PAYLOAD {
            return Some(PollEvent::Corrupt(format!(
                "frame length {len} outside 1..={MAX_PAYLOAD}"
            )));
        }
        if self.acc.len() < 8 + len {
            return None;
        }
        let frame: Vec<u8> = self.acc.drain(..8 + len).collect();
        match read_frame(&mut &frame[..]) {
            Ok((id, msg)) => Some(PollEvent::Frame(id, msg)),
            Err(WireError::UnknownType {
                request_id,
                type_byte,
            }) => Some(PollEvent::Unknown(request_id, type_byte)),
            Err(WireError::Corrupt(msg)) => Some(PollEvent::Corrupt(msg)),
            Err(WireError::Io(_)) => Some(PollEvent::Io), // unreachable: full frame buffered
        }
    }
}

fn handle_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    metrics().server_connection();
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_POLL));

    // Sniff the first 8 bytes: a protocol hello (PROTOCOL.md §1.1) or an
    // HTTP GET for /metrics (§6) — "GET " can never begin a valid hello.
    let mut sniff = FrameBuf::new();
    loop {
        if sniff.acc.len() >= 4 && &sniff.acc[0..4] == b"GET " {
            serve_http(&mut stream, &mut sniff.acc, shared);
            return;
        }
        if sniff.acc.len() >= 8 {
            break;
        }
        let mut tmp = [0u8; 256];
        match stream.read(&mut tmp) {
            Ok(0) => return,
            Ok(n) => sniff.acc.extend_from_slice(&tmp[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shared.shutting_down() {
                    return;
                }
            }
            Err(_) => return,
        }
    }
    if sniff.acc[0..8] != HELLO {
        metrics().server_protocol_error();
        return; // §1.2: bad magic/version gets no reply
    }
    sniff.acc.drain(..8);
    if stream
        .write_all(&HELLO)
        .and_then(|()| stream.flush())
        .is_err()
    {
        return;
    }

    // The accept-path failpoint: degrade to a connection-scoped ERROR
    // (§5.2, request_id 0) instead of a hang or a silent close.
    if let Err(e) = drtopk_failpoints::hit(ACCEPT_FAILPOINT) {
        let msg = Message::Error {
            code: ErrorCode::Internal,
            message: e.to_string(),
        };
        let _ = write_frame(&mut stream, 0, &msg);
        return;
    }

    let writer = Arc::new(ConnWriter {
        stream: match stream.try_clone() {
            Ok(s) => Mutex::new(s),
            Err(_) => return,
        },
        outstanding: AtomicUsize::new(0),
    });

    let mut frames = sniff; // any bytes read past the hello stay buffered
    loop {
        match frames.poll(&mut stream) {
            PollEvent::Frame(id, msg) => dispatch(id, msg, &writer, shared),
            PollEvent::Unknown(id, type_byte) => {
                // §5.3: sound framing, unknown type — the connection lives.
                writer.send(
                    id,
                    &Message::Error {
                        code: ErrorCode::Unsupported,
                        message: format!("unknown message type 0x{type_byte:02x}"),
                    },
                );
            }
            PollEvent::Timeout => {
                if shared.shutting_down() && writer.outstanding.load(SeqCst) == 0 {
                    return;
                }
            }
            PollEvent::Eof => {
                // Clean disconnect; workers still answering this
                // connection's admitted queries hold their own Arc and
                // will fail the writes harmlessly.
                return;
            }
            PollEvent::Corrupt(detail) => {
                // §2.2: framing is untrustworthy past a corrupt frame.
                metrics().server_protocol_error();
                writer.send(
                    0,
                    &Message::Error {
                        code: ErrorCode::BadRequest,
                        message: detail,
                    },
                );
                return;
            }
            PollEvent::Io => return,
        }
    }
}

/// Routes one sound frame (PROTOCOL.md §3).
fn dispatch(request_id: u64, msg: Message, writer: &Arc<ConnWriter>, shared: &Arc<Shared>) {
    match msg {
        Message::Query {
            deadline_ms,
            max_cost,
            k,
            weights,
        } => admit_query(
            request_id,
            deadline_ms,
            max_cost,
            k,
            weights,
            false,
            writer,
            shared,
        ),
        Message::ShardQuery {
            deadline_ms,
            max_cost,
            k,
            weights,
        } => admit_query(
            request_id,
            deadline_ms,
            max_cost,
            k,
            weights,
            true,
            writer,
            shared,
        ),
        Message::MetricsRequest => {
            writer.send(request_id, &Message::MetricsReply(shared.prometheus_text()));
        }
        Message::Ping => writer.send(request_id, &Message::Pong),
        Message::Drain => {
            writer.send(request_id, &Message::Draining);
            shared.begin_drain();
        }
        // A client sending response-typed messages is confused (§3).
        Message::Topk { .. }
        | Message::MetricsReply(_)
        | Message::Pong
        | Message::Draining
        | Message::Error { .. } => {
            writer.send(
                request_id,
                &Message::Error {
                    code: ErrorCode::BadRequest,
                    message: "response-typed message sent to the server".to_string(),
                },
            );
        }
    }
}

/// Admission control (PROTOCOL.md §3.1, §5.1): validate, try the cache,
/// then either enqueue under the depth bound or shed with `Overloaded`.
#[allow(clippy::too_many_arguments)]
fn admit_query(
    request_id: u64,
    deadline_ms: u32,
    max_cost: u64,
    k: u32,
    weights: Vec<f64>,
    want_scores: bool,
    writer: &Arc<ConnWriter>,
    shared: &Arc<Shared>,
) {
    metrics().server_request();
    let reject = |code: ErrorCode, message: String| {
        writer.send(request_id, &Message::Error { code, message });
    };
    if shared.shutting_down() {
        return reject(ErrorCode::ShuttingDown, "server is draining".to_string());
    }
    if want_scores && !matches!(shared.backend, Backend::ShardNode { .. }) {
        // SHARD_QUERY is node-to-node traffic (§3.5); only a shard node
        // answers it.
        return reject(
            ErrorCode::Unsupported,
            "SHARD_QUERY requires a shard node".to_string(),
        );
    }
    let dims = shared.backend.dims();
    if weights.len() != dims {
        return reject(
            ErrorCode::BadRequest,
            format!("index has {dims} dims, query has {}", weights.len()),
        );
    }
    let w = match Weights::new(weights) {
        Ok(w) => w,
        Err(e) => return reject(ErrorCode::BadRequest, e.to_string()),
    };
    let k = k as usize;

    // Hot weight cells never touch the queue: a cache hit is a complete
    // answer served on the reader thread.
    if let Backend::Single {
        index,
        cache: Some(cache),
    } = &shared.backend
    {
        if let Some(hit) = cache.probe(index, &w, k) {
            writer.send(
                request_id,
                &Message::Topk {
                    truncated: 0,
                    evaluated: hit.cost.evaluated,
                    pseudo_evaluated: hit.cost.pseudo_evaluated,
                    ids: hit.ids.iter().map(|&id| u64::from(id)).collect(),
                    coverage: None,
                    scores: None,
                },
            );
            return;
        }
    }

    // The budget clock starts here, at admission (§3.1): queue wait
    // counts against the client's deadline.
    let mut budget = QueryBudget::unlimited();
    if deadline_ms > 0 {
        budget = budget.with_timeout(Duration::from_millis(u64::from(deadline_ms)));
    }
    if max_cost > 0 {
        budget = budget.with_max_cost(max_cost);
    }

    let mut queue = shared.queue.lock().unwrap();
    if queue.len() >= shared.cfg.queue_depth {
        drop(queue);
        metrics().server_shed();
        return reject(ErrorCode::Overloaded, "queue full".to_string());
    }
    writer.outstanding.fetch_add(1, SeqCst);
    queue.push_back(Pending {
        request_id,
        weights: w,
        k,
        budget,
        admitted: Instant::now(),
        writer: Arc::clone(writer),
        want_scores,
    });
    metrics().server_enqueue();
    drop(queue);
    shared.work_ready.notify_one();
}

/// One worker: assemble a micro-batch (flush on size or age, whichever
/// first), run it, write the replies.
fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let batch = match next_batch(shared) {
            Some(b) => b,
            None => return, // drained and shut down
        };
        run_batch(batch, shared);
    }
}

/// Blocks for work, then gathers up to `batch_max` requests, waiting at
/// most `batch_window` past the first one. Returns `None` when the
/// server is shutting down and the queue is empty.
fn next_batch(shared: &Arc<Shared>) -> Option<Vec<Pending>> {
    let mut queue = shared.queue.lock().unwrap();
    loop {
        if !queue.is_empty() {
            break;
        }
        if shared.shutting_down() {
            return None;
        }
        queue = shared.work_ready.wait(queue).unwrap();
    }
    let mut batch = Vec::with_capacity(shared.cfg.batch_max.min(queue.len()));
    batch.push(queue.pop_front().unwrap());
    let opened = Instant::now();
    while batch.len() < shared.cfg.batch_max {
        if let Some(p) = queue.pop_front() {
            batch.push(p);
            continue;
        }
        if shared.shutting_down() {
            break; // flush immediately: nothing more is coming
        }
        let age = opened.elapsed();
        if age >= shared.cfg.batch_window {
            break;
        }
        let (q, timeout) = shared
            .work_ready
            .wait_timeout(queue, shared.cfg.batch_window - age)
            .unwrap();
        queue = q;
        if timeout.timed_out() && queue.is_empty() {
            break;
        }
    }
    drop(queue);
    Some(batch)
}

fn run_batch(batch: Vec<Pending>, shared: &Arc<Shared>) {
    let m = metrics();
    m.server_batch(batch.len() as u64);
    for p in &batch {
        m.server_queue_wait(p.admitted.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
    }
    match &shared.backend {
        Backend::Single { index, cache } => run_batch_single(batch, index, cache.as_ref()),
        Backend::Sharded { router } => run_batch_sharded(batch, router),
        Backend::ShardNode { shard } => run_batch_shard_node(batch, shard),
        Backend::Remote { router } => run_batch_sharded(batch, router),
    }
}

fn run_batch_single(batch: Vec<Pending>, index: &Arc<DualLayerIndex>, cache: Option<&ResultCache>) {
    let requests: Vec<(Weights, usize, QueryBudget)> = batch
        .iter()
        .map(|p| (p.weights.clone(), p.k, p.budget.clone()))
        .collect();
    // Parallelism comes from the worker pool; each micro-batch runs on
    // its worker's thread so concurrent batches never oversubscribe.
    let mut exec = BatchExecutor::with_threads(index, 1);
    if let Some(cache) = cache {
        exec = exec.with_cache(cache);
    }
    let results = exec.run_guarded_each(&requests);
    for (p, r) in batch.into_iter().zip(results) {
        let msg = match r {
            Ok(g) => Message::Topk {
                truncated: truncate_flag(g.truncated),
                evaluated: g.cost.evaluated,
                pseudo_evaluated: g.cost.pseudo_evaluated,
                ids: g.ids.iter().map(|&id| u64::from(id)).collect(),
                coverage: None,
                scores: None,
            },
            Err(e) => Message::Error {
                code: ErrorCode::Internal,
                message: e.message,
            },
        };
        p.writer.send(p.request_id, &msg);
        p.writer.outstanding.fetch_sub(1, SeqCst);
    }
}

fn run_batch_sharded<S: ShardProbe>(batch: Vec<Pending>, router: &Arc<ShardRouter<S>>) {
    // The router fans each request across all shards itself, so requests
    // run one at a time on this worker — cross-request parallelism still
    // comes from the worker pool. Generic over the probe: the same code
    // serves in-process shards and remote replica sets.
    for p in batch {
        let r = router.topk(&p.weights, p.k, &p.budget);
        let msg = Message::Topk {
            truncated: truncate_flag(r.truncated),
            evaluated: r.cost.evaluated,
            pseudo_evaluated: r.cost.pseudo_evaluated,
            ids: r.ids,
            coverage: r.coverage.degraded().then(|| Coverage {
                shards: r.coverage.total() as u16,
                answered: r.coverage.mask(),
            }),
            scores: None,
        };
        p.writer.send(p.request_id, &msg);
        p.writer.outstanding.fetch_sub(1, SeqCst);
    }
}

/// Answers a batch on a shard node: every request probes this node's one
/// shard directly. A SHARD_QUERY reply attaches scores (the router's
/// merge orders on `(score, handle)`); a truncated probe reports the
/// truncation flag with an empty id list — the router never merges a
/// partial shard answer, so shipping the prefix would only waste wire.
fn run_batch_shard_node(batch: Vec<Pending>, shard: &Arc<ServedShard>) {
    use drtopk_core::shard::ShardError;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    for p in batch {
        // The same per-request panic isolation the batch executor gives
        // the single backend: a poisoned probe answers Internal, the
        // worker (and the node) live on.
        let outcome = catch_unwind(AssertUnwindSafe(|| shard.probe(&p.weights, p.k, &p.budget)))
            .unwrap_or_else(|_| Err(ShardError::Panic("shard probe panicked".to_string())));
        let msg = match outcome {
            Ok((hits, cost)) => {
                let (scores, ids): (Vec<f64>, Vec<u64>) = hits.into_iter().unzip();
                Message::Topk {
                    truncated: 0,
                    evaluated: cost.evaluated,
                    pseudo_evaluated: cost.pseudo_evaluated,
                    ids,
                    coverage: None,
                    scores: p.want_scores.then_some(scores),
                }
            }
            Err(ShardError::Truncated(r)) => Message::Topk {
                truncated: truncate_flag(Some(r)),
                evaluated: 0,
                pseudo_evaluated: 0,
                ids: Vec::new(),
                coverage: None,
                scores: None,
            },
            Err(e) => Message::Error {
                code: ErrorCode::Internal,
                message: e.to_string(),
            },
        };
        p.writer.send(p.request_id, &msg);
        p.writer.outstanding.fetch_sub(1, SeqCst);
    }
}

fn truncate_flag(reason: Option<TruncateReason>) -> u8 {
    match reason {
        None => 0,
        Some(TruncateReason::Deadline) => 1,
        Some(TruncateReason::CostExceeded) => 2,
        Some(TruncateReason::Cancelled) => 3,
    }
}

/// Minimal HTTP answer for Prometheus scrapers (`PROTOCOL.md` §6): only
/// the request line matters, only `/metrics` exists.
fn serve_http(stream: &mut TcpStream, acc: &mut Vec<u8>, shared: &Arc<Shared>) {
    let deadline = Instant::now() + Duration::from_secs(2);
    while !acc.windows(2).any(|w| w == b"\r\n") {
        if Instant::now() >= deadline {
            return;
        }
        let mut tmp = [0u8; 512];
        match stream.read(&mut tmp) {
            Ok(0) => return,
            Ok(n) => acc.extend_from_slice(&tmp[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(_) => return,
        }
    }
    let line_end = acc.windows(2).position(|w| w == b"\r\n").unwrap();
    let line = String::from_utf8_lossy(&acc[..line_end]);
    let path = line.split_whitespace().nth(1).unwrap_or("");
    let (status, body) = if path.starts_with("/metrics") {
        ("200 OK", shared.prometheus_text())
    } else {
        ("404 Not Found", "not found\n".to_string())
    };
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}
