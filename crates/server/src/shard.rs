//! The served form of one shard: a durable store behind a lock, probed
//! through the core router's [`ShardProbe`] trait.
//!
//! [`ServedShard`] is what [`crate::Server::start_sharded`] hands to the
//! [`ShardRouter`](drtopk_core::ShardRouter): each shard wraps its own
//! [`DurableDynamicIndex`] (own WAL + snapshot directory, see
//! `drtopk_storage::shards`) in an `RwLock`, so queries share read access
//! while recovery swaps a rebuilt store in with a write lock. A shard
//! whose store failed to open still gets a slot
//! ([`ServedShard::unavailable`]) so the deployment serves degraded
//! around it; `drtopk recover --shard N` plus [`ServedShard::replace`]
//! brings it back without restarting peers. Probes visit the shard's
//! named failpoint first — the chaos suite injects I/O errors, panics,
//! and stalls there to exercise every failure mode the router has to
//! survive.

use drtopk_common::Weights;
use drtopk_core::shard::{ShardAnswer, ShardError, ShardProbe};
use drtopk_core::QueryBudget;
use drtopk_storage::DurableDynamicIndex;
use std::sync::RwLock;

/// One shard as the server holds it.
#[derive(Debug)]
pub struct ServedShard {
    id: usize,
    dims: usize,
    /// `Err` carries the reason the store is unavailable (failed
    /// recovery at startup); such a shard answers every probe with
    /// [`ShardError::Unavailable`] until [`ServedShard::replace`].
    store: RwLock<Result<DurableDynamicIndex, String>>,
}

impl ServedShard {
    /// Wraps a recovered (or freshly created) durable store as shard `id`.
    pub fn new(id: usize, store: DurableDynamicIndex) -> Self {
        ServedShard {
            id,
            dims: store.index().dims(),
            store: RwLock::new(Ok(store)),
        }
    }

    /// A slot for a shard whose store could not be opened (corrupt
    /// directory, failed recovery): the deployment serves around it with
    /// degraded coverage. `dims` must match the healthy shards'.
    pub fn unavailable(id: usize, dims: usize, reason: impl Into<String>) -> Self {
        ServedShard {
            id,
            dims,
            store: RwLock::new(Err(reason.into())),
        }
    }

    /// This shard's id (its index in the router, and its `h % P` class).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Runs `f` under the read lock if the store is available (metrics,
    /// stats, checkpointing decisions). A lock poisoned by a panicked
    /// probe is still readable: probes never leave the store mid-mutation.
    pub fn with_store<T>(&self, f: impl FnOnce(&DurableDynamicIndex) -> T) -> Option<T> {
        let guard = self.store.read().unwrap_or_else(|e| e.into_inner());
        guard.as_ref().ok().map(f)
    }

    /// Runs `f` under the write lock if the store is available — the
    /// admin mutation path (inserts, deletes, checkpoints) for a single
    /// shard; probes on other shards are unaffected.
    pub fn with_store_mut<T>(&self, f: impl FnOnce(&mut DurableDynamicIndex) -> T) -> Option<T> {
        let mut guard = self.store.write().unwrap_or_else(|e| e.into_inner());
        guard.as_mut().ok().map(f)
    }

    /// Swaps in a re-recovered store (the rejoin path after `drtopk
    /// recover --shard N`): takes the write lock, so it waits out
    /// in-flight probes and every later probe sees the new store.
    pub fn replace(&self, store: DurableDynamicIndex) {
        let mut guard = self.store.write().unwrap_or_else(|e| e.into_inner());
        *guard = Ok(store);
    }
}

impl ShardProbe for ServedShard {
    fn probe(
        &self,
        w: &Weights,
        k: usize,
        budget: &QueryBudget,
    ) -> Result<ShardAnswer, ShardError> {
        // The chaos suite's injection point: one named site per shard.
        if let Err(e) = drtopk_failpoints::hit(drtopk_failpoints::shard_site(self.id)) {
            return Err(ShardError::Io(e.to_string()));
        }
        let guard = self.store.read().unwrap_or_else(|e| e.into_inner());
        let store = match guard.as_ref() {
            Ok(store) => store,
            Err(reason) => return Err(ShardError::Unavailable(reason.clone())),
        };
        if let Some(msg) = store.poisoned() {
            // A store poisoned by a write failure still serves reads, but
            // its durability story is broken — surface it so the router
            // marks the shard Down and an operator recovers it.
            return Err(ShardError::Unavailable(format!("store poisoned: {msg}")));
        }
        store.index().probe(w, k, budget)
    }

    fn dims(&self) -> usize {
        self.dims
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drtopk_common::{Distribution, WorkloadSpec};
    use drtopk_core::shard::{RouterConfig, ShardRouter};
    use drtopk_core::{DlOptions, DynamicIndex};
    use drtopk_storage::{create_sharded, DurableOptions};
    use std::path::PathBuf;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("drtopk_served_shard_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn served_shards_route_bit_identically() {
        let rel = WorkloadSpec::new(Distribution::Independent, 2, 120, 3).generate();
        let stores = create_sharded(&tmpdir("route"), &rel, 3, &DurableOptions::default()).unwrap();
        let shards: Vec<ServedShard> = stores
            .into_iter()
            .enumerate()
            .map(|(s, st)| ServedShard::new(s, st))
            .collect();
        let router = ShardRouter::new(shards, RouterConfig::default()).unwrap();
        let oracle = DynamicIndex::new(&rel, DlOptions::default(), 0.2);
        let w = Weights::new(vec![0.3, 0.7]).unwrap();
        let routed = router.topk(&w, 10, &QueryBudget::unlimited());
        assert_eq!(routed.ids, oracle.topk(&w, 10).0);
        assert!(routed.coverage.is_full());
    }

    #[test]
    fn unavailable_slot_serves_degraded_until_replaced() {
        let rel = WorkloadSpec::new(Distribution::Independent, 2, 100, 9).generate();
        let root = tmpdir("unavailable");
        let mut stores = create_sharded(&root, &rel, 2, &DurableOptions::default()).unwrap();
        let shard1 = stores.pop().unwrap();
        let shard0 = stores.pop().unwrap();
        let shards = vec![
            ServedShard::new(0, shard0),
            ServedShard::unavailable(1, 2, "recovery failed in the test"),
        ];
        let router = ShardRouter::new(
            shards,
            RouterConfig {
                retry: drtopk_core::RetryPolicy {
                    max_retries: 0,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .unwrap();
        let w = Weights::new(vec![0.6, 0.4]).unwrap();
        let routed = router.topk(&w, 8, &QueryBudget::unlimited());
        assert!(routed.coverage.degraded());
        assert_eq!(routed.coverage.skipped(), vec![1]);

        router.shard(1).replace(shard1);
        router.mark_up(1);
        let oracle = DynamicIndex::new(&rel, DlOptions::default(), 0.2);
        let healed = router.topk(&w, 8, &QueryBudget::unlimited());
        assert!(healed.coverage.is_full());
        assert_eq!(healed.ids, oracle.topk(&w, 8).0);
    }
}
