//! Remote shard probes: [`ShardProbe`] over the v1 wire protocol.
//!
//! One [`RemoteShardProbe`] is one shard-node endpoint. The router's
//! carved per-shard [`QueryBudget`] travels on the wire as the
//! SHARD_QUERY budget header (`PROTOCOL.md` §3.5), and the socket read
//! timeout is pinned to that remaining budget plus a small slack — so a
//! stalled node surfaces as [`ShardError::Timeout`] inside the carved
//! window instead of eating the whole request deadline. Wire failures
//! map onto the same [`ShardError`] fault classes the in-process router
//! already distinguishes, which is what lets the existing
//! retry/backoff/health machinery drive remote nodes unchanged:
//!
//! | wire outcome                        | fault class                   |
//! |-------------------------------------|-------------------------------|
//! | connect failure                     | `Io` (retryable)              |
//! | read timed out                      | `Timeout` (shard stalled)     |
//! | TOPK with truncation flag           | `Truncated` (router classifies: carved → `Timeout`, request → stop) |
//! | ERROR `ShuttingDown` (draining)     | `Unavailable` (try a replica) |
//! | ERROR `Overloaded`                  | `Unavailable` (try a replica) |
//! | ERROR `Internal` / `BadRequest`     | `Io`                          |
//! | protocol violation / bad frame      | `Io` (connection dropped)     |

use crate::client::{Client, ClientError};
use drtopk_common::{Cost, Weights};
use drtopk_core::shard::{ReplicaSet, ScoredHit, ShardAnswer, ShardError, ShardProbe, ShardRouter};
use drtopk_core::{QueryBudget, TruncateReason};
use std::io;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The router type a multi-node deployment serves through: every logical
/// shard is a replica set of remote endpoints.
pub type RemoteRouter = ShardRouter<ReplicaSet<RemoteShardProbe>>;

/// Tunables for one remote endpoint.
#[derive(Debug, Clone)]
pub struct RemoteProbeConfig {
    /// Re-attempts after transient connect failures (refused / reset —
    /// a node mid-restart); hello timeouts are never retried.
    pub connect_retries: u32,
    /// Base backoff between connect attempts.
    pub connect_backoff: Duration,
    /// Slack added to the carved budget's remaining time when pinning
    /// the socket read timeout, covering the reply's own wire time.
    pub read_slack: Duration,
}

impl Default for RemoteProbeConfig {
    fn default() -> Self {
        RemoteProbeConfig {
            connect_retries: 2,
            connect_backoff: Duration::from_millis(5),
            read_slack: Duration::from_millis(20),
        }
    }
}

/// One shard-node endpoint, probed over TCP with a small connection
/// pool (checked-out per probe, checked back in after clean replies, so
/// concurrent probes of the same endpoint each get their own stream).
pub struct RemoteShardProbe {
    addr: String,
    dims: usize,
    cfg: RemoteProbeConfig,
    pool: Mutex<Vec<Client>>,
}

impl std::fmt::Debug for RemoteShardProbe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteShardProbe")
            .field("addr", &self.addr)
            .field("dims", &self.dims)
            .finish()
    }
}

impl RemoteShardProbe {
    /// A probe for the shard node at `addr` serving `dims`-dimensional
    /// tuples (declared by the topology file — dimensionality must be
    /// known without a network round trip because [`ShardProbe::dims`]
    /// is synchronous and infallible).
    pub fn new(addr: impl Into<String>, dims: usize, cfg: RemoteProbeConfig) -> Self {
        RemoteShardProbe {
            addr: addr.into(),
            dims,
            cfg,
            pool: Mutex::new(Vec::new()),
        }
    }

    /// The endpoint address (metrics labels, pinger targets).
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Pops a pooled connection or dials a fresh one. `read_timeout` is
    /// applied *before* the hello exchange on fresh dials — a node that
    /// accepts TCP but never answers (SIGSTOP'd, wedged) must cost this
    /// probe its carved window, not hang its thread forever. Transient
    /// connect failures (refused/reset — a node mid-restart) are retried
    /// on a short fixed backoff; a hello timeout is not, because the
    /// budget that set it is already burning.
    fn checkout(&self, read_timeout: Option<Duration>) -> Result<Client, ShardError> {
        if let Some(c) = self.pool.lock().unwrap_or_else(|e| e.into_inner()).pop() {
            return Ok(c);
        }
        let mut attempt = 0u32;
        loop {
            let res = match read_timeout {
                Some(t) => Client::connect_timeout(self.addr.as_str(), t),
                None => Client::connect(self.addr.as_str()),
            };
            return match res {
                Ok(c) => Ok(c),
                Err(ClientError::Io(e))
                    if attempt < self.cfg.connect_retries && is_retryable_connect(&e) =>
                {
                    attempt += 1;
                    std::thread::sleep(self.cfg.connect_backoff);
                    continue;
                }
                Err(ClientError::Io(e)) if is_timeout(&e) => Err(ShardError::Timeout),
                Err(other) => Err(ShardError::Io(format!("connect {}: {other}", self.addr))),
            };
        }
    }

    fn checkin(&self, client: Client) {
        // Clear any probe-scoped read timeout before pooling the stream.
        if client.set_read_timeout(None).is_ok() {
            self.pool
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(client);
        }
    }
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
    )
}

/// Connect failures a node restart produces — worth a short retry.
/// Timeouts are excluded: they already spent the carved window.
fn is_retryable_connect(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::ConnectionRefused
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::UnexpectedEof
            | io::ErrorKind::BrokenPipe
    )
}

fn truncate_reason(flag: u8) -> TruncateReason {
    match flag {
        1 => TruncateReason::Deadline,
        3 => TruncateReason::Cancelled,
        _ => TruncateReason::CostExceeded,
    }
}

impl ShardProbe for RemoteShardProbe {
    fn probe(
        &self,
        w: &Weights,
        k: usize,
        budget: &QueryBudget,
    ) -> Result<ShardAnswer, ShardError> {
        // Pre-flight the carved budget: an already-spent deadline or a
        // tripped cancel flag needs no network round trip to report.
        if let Some(f) = budget.cancel_flag() {
            if f.load(std::sync::atomic::Ordering::Relaxed) {
                return Err(ShardError::Truncated(TruncateReason::Cancelled));
            }
        }
        let remaining = match budget.deadline() {
            Some(d) => {
                let now = Instant::now();
                if now >= d {
                    return Err(ShardError::Truncated(TruncateReason::Deadline));
                }
                Some(d - now)
            }
            None => None,
        };

        // Budget propagation (PROTOCOL.md §3.5): the wire deadline is the
        // *remaining* carved per-shard time, floored at 1 ms because 0
        // means unbounded on the wire. The read timeout mirrors it plus
        // slack: a node that stalls past its carved window is a Timeout
        // fault here, not a whole-request stall.
        let deadline_ms =
            remaining.map_or(0, |r| r.as_millis().clamp(1, u128::from(u32::MAX)) as u32);
        let read_timeout = remaining.map(|r| r + self.cfg.read_slack);
        let mut client = self.checkout(read_timeout)?;
        if client.set_read_timeout(read_timeout).is_err() {
            return Err(ShardError::Io(format!(
                "{}: socket configuration",
                self.addr
            )));
        }
        let max_cost = budget.max_cost().unwrap_or(0);
        let sent = client.send_shard_query(w.as_slice(), k as u32, deadline_ms, max_cost);
        if let Err(e) = sent {
            return Err(match e {
                ClientError::Io(e) if is_timeout(&e) => ShardError::Timeout,
                other => ShardError::Io(format!("{}: {other}", self.addr)),
            });
        }
        match client.recv_topk() {
            Ok((_, reply)) => {
                if reply.truncated != 0 {
                    // The shard node's answer was cut by the budget we
                    // sent. The connection is healthy; the router
                    // classifies the trip (carved → Timeout fault,
                    // request-scoped → stop the request).
                    self.checkin(client);
                    return Err(ShardError::Truncated(truncate_reason(reply.truncated)));
                }
                let Some(scores) = reply.scores else {
                    // A complete SHARD_QUERY reply must carry scores —
                    // the merge orders on (score, handle).
                    return Err(ShardError::Io(format!(
                        "{}: complete shard reply missing scores",
                        self.addr
                    )));
                };
                if scores.len() != reply.ids.len() {
                    return Err(ShardError::Io(format!(
                        "{}: {} scores for {} ids",
                        self.addr,
                        scores.len(),
                        reply.ids.len()
                    )));
                }
                self.checkin(client);
                let hits: Vec<ScoredHit> = scores.into_iter().zip(reply.ids).collect();
                let cost = Cost {
                    evaluated: reply.evaluated,
                    pseudo_evaluated: reply.pseudo_evaluated,
                };
                Ok((hits, cost))
            }
            Err(ClientError::Io(e)) if is_timeout(&e) => Err(ShardError::Timeout),
            Err(ClientError::Io(e)) => Err(ShardError::Io(format!("{}: {e}", self.addr))),
            Err(ClientError::Server { code, message }) => {
                use crate::protocol::ErrorCode;
                match code {
                    // A draining or overloaded node is a reason to try a
                    // replica, not to distrust the data.
                    ErrorCode::ShuttingDown => {
                        Err(ShardError::Unavailable(format!("{}: draining", self.addr)))
                    }
                    ErrorCode::Overloaded => Err(ShardError::Unavailable(format!(
                        "{}: overloaded",
                        self.addr
                    ))),
                    _ => {
                        // The ERROR frame leaves the stream in a sound
                        // state; pool it for the next probe.
                        self.checkin(client);
                        Err(ShardError::Io(format!("{}: {code}: {message}", self.addr)))
                    }
                }
            }
            Err(other) => Err(ShardError::Io(format!("{}: {other}", self.addr))),
        }
    }

    fn dims(&self) -> usize {
        self.dims
    }
}
