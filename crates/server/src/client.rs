//! Blocking client for the drtopk index service.
//!
//! Speaks `PROTOCOL.md` verbatim: hello exchange (§1.1), then frames
//! (§2). The synchronous [`Client::query`] sends one QUERY and reads its
//! reply; the split [`Client::send_query`] / [`Client::recv`] pair
//! supports pipelining — many requests in flight on one connection,
//! replies paired back up by `request_id` (§2.3), which the open-loop
//! load generator uses.

use crate::protocol::{read_frame, write_frame, Coverage, ErrorCode, Message, WireError, HELLO};
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A decoded TOPK reply (`PROTOCOL.md` §4.1).
#[derive(Debug, Clone, PartialEq)]
pub struct TopkReply {
    /// Answer ids, ascending `(score, id)`; a true prefix of the exact
    /// answer when `truncated != 0`.
    pub ids: Vec<u64>,
    /// Real tuples scored (Definition 9, real part).
    pub evaluated: u64,
    /// Zero-layer pseudo-tuples scored (Definition 9, pseudo part).
    pub pseudo_evaluated: u64,
    /// Truncation reason: `0` complete, `1` deadline, `2` cost cap, `3`
    /// cancelled.
    pub truncated: u8,
    /// Degraded shard coverage (§4.1 flags bit 2): `Some` exactly when
    /// the server skipped one or more shards, in which case `ids` is the
    /// exact answer over the shards named in the mask.
    pub coverage: Option<Coverage>,
    /// Per-id scores (§4.1 flags bit 3): `Some` exactly when the server
    /// attached them, which replies to SHARD_QUERY always do — the
    /// router's k-way merge orders on `(score, id)` and cannot re-derive
    /// scores from ids alone.
    pub scores: Option<Vec<f64>>,
}

impl TopkReply {
    /// Whether the answer ran to completion (no budget tripped).
    pub fn is_complete(&self) -> bool {
        self.truncated == 0
    }

    /// Whether the answer covers every shard of the deployment.
    pub fn is_full_coverage(&self) -> bool {
        self.coverage.is_none()
    }
}

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed or died.
    Io(io::Error),
    /// The server sent bytes that violate the spec.
    Wire(WireError),
    /// The server answered with an ERROR frame (`PROTOCOL.md` §5).
    Server {
        /// The server's error code.
        code: ErrorCode,
        /// The server's human-readable detail.
        message: String,
    },
    /// The reply was a sound frame of an unexpected type.
    Unexpected(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Wire(e) => write!(f, "protocol error: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server error ({code}): {message}")
            }
            ClientError::Unexpected(what) => write!(f, "unexpected reply: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Io(e) => ClientError::Io(e),
            other => ClientError::Wire(other),
        }
    }
}

/// Whether a connect-time failure is worth retrying: the kinds a server
/// restart or a not-yet-listening socket produce, not spec violations.
fn is_transient(e: &ClientError) -> bool {
    match e {
        ClientError::Io(e) => matches!(
            e.kind(),
            io::ErrorKind::ConnectionRefused
                | io::ErrorKind::ConnectionReset
                | io::ErrorKind::ConnectionAborted
                | io::ErrorKind::TimedOut
                | io::ErrorKind::UnexpectedEof
                | io::ErrorKind::BrokenPipe
        ),
        _ => false,
    }
}

/// A blocking connection to a `drtopk serve` process.
///
/// One `Client` is one TCP connection; it is not `Sync` — use one per
/// thread (the server multiplexes them into shared batches on its side).
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connects and performs the hello exchange (`PROTOCOL.md` §1.1).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        Self::connect_inner(addr, None)
    }

    /// [`connect`](Self::connect) with a read timeout applied *before*
    /// the hello exchange — a stalled listener (one that accepts the TCP
    /// connection but never answers, e.g. a SIGSTOP'd process) then
    /// surfaces as a timed-out hello instead of hanging the caller. The
    /// timeout stays on the socket for subsequent reads.
    pub fn connect_timeout(
        addr: impl ToSocketAddrs,
        timeout: Duration,
    ) -> Result<Self, ClientError> {
        Self::connect_inner(addr, Some(timeout))
    }

    fn connect_inner(
        addr: impl ToSocketAddrs,
        timeout: Option<Duration>,
    ) -> Result<Self, ClientError> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        if let Some(t) = timeout {
            stream.set_read_timeout(Some(t))?;
        }
        stream.write_all(&HELLO)?;
        stream.flush()?;
        let mut echo = [0u8; 8];
        stream.read_exact(&mut echo)?;
        if echo != HELLO {
            return Err(ClientError::Unexpected(format!(
                "bad hello echo: {echo:02x?}"
            )));
        }
        Ok(Client { stream, next_id: 1 })
    }

    /// [`connect`](Self::connect) with bounded retry: up to `retries`
    /// re-attempts after *transient* failures (refused/reset/timed-out
    /// connections, or an interrupted hello), sleeping a jittered
    /// exponential backoff between attempts (base `backoff`, doubling,
    /// capped at 32× base). Non-transient failures — a listener that
    /// answers with a bad hello, an unresolvable address — surface
    /// immediately: retrying cannot fix those.
    pub fn connect_with_retry(
        addr: impl ToSocketAddrs + Clone,
        retries: u32,
        backoff: Duration,
    ) -> Result<Self, ClientError> {
        let mut attempt = 0u32;
        loop {
            match Self::connect(addr.clone()) {
                Ok(c) => return Ok(c),
                Err(e) if attempt < retries && is_transient(&e) => {
                    let exp = backoff.saturating_mul(1u32 << attempt.min(5));
                    // Deterministic ±50% jitter keyed off the attempt so
                    // concurrent reconnectors don't stampede in lockstep.
                    let salt = std::process::id() as u64 ^ ((attempt as u64) << 32);
                    let mut x = salt.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
                    x ^= x >> 12;
                    x ^= x << 25;
                    x ^= x >> 27;
                    let frac = 0.5 + (x >> 11) as f64 / (1u64 << 53) as f64;
                    std::thread::sleep(exp.mul_f64(frac));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Sets (or clears) the read timeout on the underlying socket. The
    /// remote shard probe bounds each reply read by the carved per-shard
    /// budget plus slack, so a stalled node surfaces as
    /// `io::ErrorKind::TimedOut`/`WouldBlock` instead of eating the whole
    /// request deadline.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> Result<(), ClientError> {
        Ok(self.stream.set_read_timeout(timeout)?)
    }

    /// Sends one SHARD_QUERY frame (§3.5) without waiting, returning its
    /// request id. `deadline_ms` is the *carved per-shard* budget, not
    /// the client request's; the reply carries scores (§4.1 bit 3).
    pub fn send_shard_query(
        &mut self,
        weights: &[f64],
        k: u32,
        deadline_ms: u32,
        max_cost: u64,
    ) -> Result<u64, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        write_frame(
            &mut self.stream,
            id,
            &Message::ShardQuery {
                deadline_ms,
                max_cost,
                k,
                weights: weights.to_vec(),
            },
        )?;
        Ok(id)
    }

    /// Sends one QUERY frame (§3.1) without waiting, returning its
    /// request id for pairing with a later [`recv`](Self::recv).
    pub fn send_query(
        &mut self,
        weights: &[f64],
        k: u32,
        deadline_ms: u32,
        max_cost: u64,
    ) -> Result<u64, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        write_frame(
            &mut self.stream,
            id,
            &Message::Query {
                deadline_ms,
                max_cost,
                k,
                weights: weights.to_vec(),
            },
        )?;
        Ok(id)
    }

    /// Reads the next reply frame, whatever request it answers.
    pub fn recv(&mut self) -> Result<(u64, Message), ClientError> {
        Ok(read_frame(&mut self.stream)?)
    }

    /// Reads the next reply and interprets it as a top-k answer,
    /// returning `(request_id, reply)`. ERROR frames become
    /// [`ClientError::Server`].
    pub fn recv_topk(&mut self) -> Result<(u64, TopkReply), ClientError> {
        match self.recv()? {
            (
                id,
                Message::Topk {
                    truncated,
                    evaluated,
                    pseudo_evaluated,
                    ids,
                    coverage,
                    scores,
                },
            ) => Ok((
                id,
                TopkReply {
                    ids,
                    evaluated,
                    pseudo_evaluated,
                    truncated,
                    coverage,
                    scores,
                },
            )),
            (_, Message::Error { code, message }) => Err(ClientError::Server { code, message }),
            (_, other) => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// One synchronous top-k query: send, then wait for that request's
    /// reply. `deadline_ms`/`max_cost` of `0` mean unbounded (§3.1).
    pub fn query(
        &mut self,
        weights: &[f64],
        k: u32,
        deadline_ms: u32,
        max_cost: u64,
    ) -> Result<TopkReply, ClientError> {
        let want = self.send_query(weights, k, deadline_ms, max_cost)?;
        loop {
            let (id, reply) = self.recv_topk()?;
            if id == want {
                return Ok(reply);
            }
            // A stale reply from an abandoned pipelined request; skip it.
        }
    }

    /// Liveness probe (§3.3).
    pub fn ping(&mut self) -> Result<(), ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        write_frame(&mut self.stream, id, &Message::Ping)?;
        match self.recv()? {
            (got, Message::Pong) if got == id => Ok(()),
            (_, other) => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Fetches the Prometheus text exposition over the protocol (§3.2).
    pub fn metrics_text(&mut self) -> Result<String, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        write_frame(&mut self.stream, id, &Message::MetricsRequest)?;
        match self.recv()? {
            (got, Message::MetricsReply(text)) if got == id => Ok(text),
            (_, other) => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Asks the server to drain gracefully (§3.4), waiting for the
    /// DRAINING acknowledgement.
    pub fn drain(&mut self) -> Result<(), ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        write_frame(&mut self.stream, id, &Message::Drain)?;
        match self.recv()? {
            (got, Message::Draining) if got == id => Ok(()),
            (_, other) => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }
}
