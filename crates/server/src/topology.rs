//! The multi-node topology file: which shard lives where.
//!
//! A deliberately hand-rolled line format (OPERATIONS.md §10) — one
//! directive per line, `#` comments, order-free:
//!
//! ```text
//! # two logical shards, shard 0 replicated
//! dims 3
//! shard 0 127.0.0.1:7001 127.0.0.1:7101
//! shard 1 127.0.0.1:7002
//! probe-timeout-ms 50      # per-probe budget carve (0 = none)
//! down-after 3             # consecutive probe failures -> shard Down
//! ping-interval-ms 200     # health pinger sweep interval
//! ping-timeout-ms 100      # PING read timeout per endpoint
//! hedge-ms 0               # hedged second probe threshold (0 = off)
//! connect-retries 2        # transient connect retries per probe
//! connect-backoff-ms 5     # base backoff between connect attempts
//! ```
//!
//! `dims` and a contiguous set of `shard` lines are required; every
//! tunable has the default shown by [`Topology::parse`]'s docs. The
//! router node loads this file (`drtopk serve --topology FILE`), builds
//! a [`RemoteRouter`] with one [`ReplicaSet`] per `shard` line
//! (endpoint order = preference order: first endpoint is the primary),
//! and `drtopk topology check FILE` validates without serving.

use crate::pinger::PingerConfig;
use crate::remote::{RemoteProbeConfig, RemoteRouter, RemoteShardProbe};
use drtopk_common::Error;
use drtopk_core::shard::MAX_SHARDS;
use drtopk_core::{ReplicaConfig, ReplicaSet, RetryPolicy, RouterConfig};
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

/// A parsed, validated topology.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    /// Attribute dimensionality every node must agree on.
    pub dims: usize,
    /// Endpoint addresses per logical shard, preference order (index 0
    /// is the primary).
    pub shards: Vec<Vec<String>>,
    /// Per-probe timeout carved from the request budget; `None` = no
    /// carve (probes bounded only by the request deadline).
    pub probe_timeout: Option<Duration>,
    /// Consecutive probe failures after which a shard goes Down.
    pub down_after: u32,
    /// Health pinger sweep interval.
    pub ping_interval: Duration,
    /// PING read timeout per endpoint.
    pub ping_timeout: Duration,
    /// Hedged second probe threshold; `None` = hedging off.
    pub hedge_after: Option<Duration>,
    /// Transient connect retries per probe.
    pub connect_retries: u32,
    /// Base backoff between connect attempts.
    pub connect_backoff: Duration,
}

impl Topology {
    /// Parses the line format. Defaults when a directive is absent:
    /// `probe-timeout-ms 50`, `down-after 3`, `ping-interval-ms 200`,
    /// `ping-timeout-ms 100`, `hedge-ms 0` (off), `connect-retries 2`,
    /// `connect-backoff-ms 5`.
    pub fn parse(text: &str) -> Result<Self, Error> {
        let invalid = |m: String| Error::Invalid(m);
        let mut dims: Option<usize> = None;
        let mut shards: BTreeMap<usize, Vec<String>> = BTreeMap::new();
        let mut probe_timeout_ms = 50u64;
        let mut down_after = 3u32;
        let mut ping_interval_ms = 200u64;
        let mut ping_timeout_ms = 100u64;
        let mut hedge_ms = 0u64;
        let mut connect_retries = 2u32;
        let mut connect_backoff_ms = 5u64;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut words = line.split_whitespace();
            let key = words.next().expect("non-empty line has a word");
            let n = lineno + 1;
            let mut one_u64 = |what: &str| -> Result<u64, Error> {
                let v = words
                    .next()
                    .ok_or_else(|| invalid(format!("line {n}: {what} needs a value")))?;
                v.parse::<u64>()
                    .map_err(|_| invalid(format!("line {n}: bad {what} value {v:?}")))
            };
            match key {
                "dims" => {
                    let d = one_u64("dims")? as usize;
                    if d == 0 {
                        return Err(invalid(format!("line {n}: dims must be positive")));
                    }
                    if dims.replace(d).is_some() {
                        return Err(invalid(format!("line {n}: dims declared twice")));
                    }
                }
                "shard" => {
                    let s = one_u64("shard id")? as usize;
                    let endpoints: Vec<String> = words.map(str::to_string).collect();
                    if endpoints.is_empty() {
                        return Err(invalid(format!(
                            "line {n}: shard {s} needs at least one endpoint"
                        )));
                    }
                    for ep in &endpoints {
                        let port_ok = ep.rsplit_once(':').is_some_and(|(host, port)| {
                            !host.is_empty() && port.parse::<u16>().is_ok()
                        });
                        if !port_ok {
                            return Err(invalid(format!(
                                "line {n}: endpoint {ep:?} is not host:port"
                            )));
                        }
                    }
                    if shards.insert(s, endpoints).is_some() {
                        return Err(invalid(format!("line {n}: shard {s} declared twice")));
                    }
                }
                "probe-timeout-ms" => probe_timeout_ms = one_u64("probe-timeout-ms")?,
                "down-after" => {
                    down_after = one_u64("down-after")? as u32;
                    if down_after == 0 {
                        return Err(invalid(format!("line {n}: down-after must be positive")));
                    }
                }
                "ping-interval-ms" => ping_interval_ms = one_u64("ping-interval-ms")?.max(1),
                "ping-timeout-ms" => ping_timeout_ms = one_u64("ping-timeout-ms")?.max(1),
                "hedge-ms" => hedge_ms = one_u64("hedge-ms")?,
                "connect-retries" => connect_retries = one_u64("connect-retries")? as u32,
                "connect-backoff-ms" => connect_backoff_ms = one_u64("connect-backoff-ms")?,
                other => {
                    return Err(invalid(format!("line {n}: unknown directive {other:?}")));
                }
            }
        }
        let dims = dims.ok_or_else(|| invalid("topology declares no dims".to_string()))?;
        if shards.is_empty() {
            return Err(invalid("topology declares no shards".to_string()));
        }
        let p = shards.len();
        if p > MAX_SHARDS {
            return Err(invalid(format!("{p} shards exceeds the cap {MAX_SHARDS}")));
        }
        // Shard ids must be exactly 0..P: the id is the partition index
        // (`h % P`), so a gap would silently drop a partition.
        if let Some((&id, _)) = shards.iter().find(|&(&id, _)| id >= p) {
            return Err(invalid(format!(
                "shard ids must cover 0..{p} contiguously (found {id})"
            )));
        }
        Ok(Topology {
            dims,
            shards: shards.into_values().collect(),
            probe_timeout: (probe_timeout_ms > 0).then(|| Duration::from_millis(probe_timeout_ms)),
            down_after,
            ping_interval: Duration::from_millis(ping_interval_ms),
            ping_timeout: Duration::from_millis(ping_timeout_ms),
            hedge_after: (hedge_ms > 0).then(|| Duration::from_millis(hedge_ms)),
            connect_retries,
            connect_backoff: Duration::from_millis(connect_backoff_ms),
        })
    }

    /// Reads and parses a topology file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, Error> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| Error::Invalid(format!("cannot read topology {}: {e}", path.display())))?;
        Self::parse(&text)
    }

    /// Logical shard count.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// A human-readable summary for `drtopk topology check`.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "topology: {} shard(s), {} dims\n",
            self.shards.len(),
            self.dims
        ));
        for (s, endpoints) in self.shards.iter().enumerate() {
            out.push_str(&format!(
                "  shard {s}: {} replica(s): {}\n",
                endpoints.len(),
                endpoints.join(" ")
            ));
        }
        out.push_str(&format!(
            "  probe-timeout {:?}, down-after {}, hedge {:?}\n",
            self.probe_timeout, self.down_after, self.hedge_after
        ));
        out.push_str(&format!(
            "  ping every {:?} (timeout {:?}), connect retries {} (backoff {:?})\n",
            self.ping_interval, self.ping_timeout, self.connect_retries, self.connect_backoff
        ));
        out
    }

    /// The per-endpoint probe configuration this topology prescribes.
    pub fn probe_config(&self) -> RemoteProbeConfig {
        RemoteProbeConfig {
            connect_retries: self.connect_retries,
            connect_backoff: self.connect_backoff,
            ..RemoteProbeConfig::default()
        }
    }

    /// The health pinger configuration this topology prescribes.
    pub fn pinger_config(&self) -> PingerConfig {
        PingerConfig {
            interval: self.ping_interval,
            timeout: self.ping_timeout,
            ..PingerConfig::default()
        }
    }

    /// Builds the remote router: one [`ReplicaSet`] of
    /// [`RemoteShardProbe`]s per shard line. Purely local — no
    /// connections are opened until the first probe.
    pub fn build_router(&self) -> Result<Arc<RemoteRouter>, Error> {
        let probe_cfg = self.probe_config();
        let replica_cfg = ReplicaConfig {
            hedge_after: self.hedge_after,
        };
        let sets = self
            .shards
            .iter()
            .map(|endpoints| {
                let replicas = endpoints
                    .iter()
                    .map(|addr| Arc::new(RemoteShardProbe::new(addr, self.dims, probe_cfg.clone())))
                    .collect();
                ReplicaSet::new(replicas, replica_cfg.clone())
            })
            .collect::<Result<Vec<_>, _>>()?;
        let cfg = RouterConfig {
            retry: RetryPolicy::default(),
            probe_timeout: self.probe_timeout,
            down_after: self.down_after,
        };
        Ok(Arc::new(RemoteRouter::new(sets, cfg)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "\
        # router topology\n\
        dims 3\n\
        shard 1 127.0.0.1:7002\n\
        shard 0 127.0.0.1:7001 127.0.0.1:7101  # replicated primary\n\
        probe-timeout-ms 40\n\
        hedge-ms 25\n";

    #[test]
    fn parses_directives_and_orders_shards() {
        let t = Topology::parse(GOOD).unwrap();
        assert_eq!(t.dims, 3);
        assert_eq!(t.shard_count(), 2);
        assert_eq!(t.shards[0], vec!["127.0.0.1:7001", "127.0.0.1:7101"]);
        assert_eq!(t.shards[1], vec!["127.0.0.1:7002"]);
        assert_eq!(t.probe_timeout, Some(Duration::from_millis(40)));
        assert_eq!(t.hedge_after, Some(Duration::from_millis(25)));
        assert_eq!(t.down_after, 3, "default survives");
        let router = t.build_router().unwrap();
        assert_eq!(router.shards(), 2);
        assert_eq!(router.dims(), 3);
        assert!(t.summary().contains("shard 0: 2 replica(s)"));
    }

    #[test]
    fn rejects_malformed_topologies() {
        for (text, why) in [
            ("shard 0 a:1\n", "no dims"),
            ("dims 2\n", "no shards"),
            ("dims 0\nshard 0 a:1\n", "zero dims"),
            ("dims 2\nshard 0 a:1\nshard 2 a:2\n", "gap in shard ids"),
            ("dims 2\nshard 0 a:1\nshard 0 a:2\n", "duplicate shard"),
            ("dims 2\nshard 0\n", "no endpoints"),
            ("dims 2\nshard 0 nocolon\n", "bad endpoint"),
            ("dims 2\nshard 0 host:99999\n", "bad port"),
            ("dims 2\nshard 0 a:1\ndown-after 0\n", "zero down-after"),
            ("dims 2\nshard 0 a:1\nwat 3\n", "unknown directive"),
            ("dims 2\ndims 3\nshard 0 a:1\n", "dims twice"),
        ] {
            assert!(Topology::parse(text).is_err(), "{why}");
        }
    }

    #[test]
    fn hedge_and_probe_timeout_can_be_disabled() {
        let t = Topology::parse("dims 2\nshard 0 a:1\nprobe-timeout-ms 0\nhedge-ms 0\n").unwrap();
        assert_eq!(t.probe_timeout, None);
        assert_eq!(t.hedge_after, None);
    }
}
