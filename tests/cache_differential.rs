//! Differential suite for the weight-space result cache.
//!
//! The uncached query path is the oracle: with a [`ResultCache`] in
//! front, every answer's ids must stay bit-identical — across
//! dimensionalities (2-d exact-cell keys and d ≥ 3 certificate keys),
//! across the option matrix (including 2-d *without* the exact zero
//! layer, which falls back to quantized keys), under seeded dynamic
//! insert/delete churn hammering generation invalidation, and across
//! persistence recovery with replayed mutations. Reported costs follow
//! the documented cache semantics (0 on a 2-d cell hit, k rescores on a
//! certified hit, a k+1-fetch on a miss) and are pinned where exact.

use drtopk::common::{Distribution, Weights, WorkloadSpec, ZipfWeightWorkload};
use drtopk::core::{
    CacheOutcome, DlOptions, DualLayerIndex, DynamicIndex, EdsPolicy, ResultCache, ZeroMode,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Queries `idx` through a fresh cache with a Zipf-repeated workload and
/// a spread of k values; every answer must match the uncached oracle, and
/// hit costs must follow the documented semantics.
fn assert_cache_identical(idx: &DualLayerIndex, d: usize, seed: u64, ctx: &str) {
    let cache = ResultCache::default();
    let n = idx.len();
    let workload = ZipfWeightWorkload::new(d, 10, 120, 1.0, seed).generate();
    let mut ks = vec![1usize, 3, 10, n / 2];
    ks.retain(|&k| k > 0);
    ks.dedup();
    if ks.is_empty() {
        ks.push(1); // n = 0: still exercise the empty-answer bypass
    }
    for (q, w) in workload.iter().enumerate() {
        let k = ks[q % ks.len()];
        let want = idx.topk(w, k);
        let got = cache.topk(idx, w, k);
        assert_eq!(got.ids, want.ids, "{ctx} q={q} k={k}: ids differ");
        match got.outcome {
            CacheOutcome::Hit2d => {
                assert_eq!(got.cost.total(), 0, "{ctx} q={q} k={k}: cell hits are free")
            }
            CacheOutcome::HitCertified => assert_eq!(
                got.cost.evaluated,
                want.ids.len() as u64,
                "{ctx} q={q} k={k}: certified hits rescore exactly k"
            ),
            CacheOutcome::Miss | CacheOutcome::Bypass => {}
        }
    }
    if n > 0 {
        let s = cache.stats();
        assert!(s.hits > 0, "{ctx}: zipf repeats must produce hits: {s:?}");
    }
}

#[test]
fn cache_matches_uncached_across_dimensionalities() {
    // d ∈ {2, 3, 5, 8}: the exact 2-d cell path plus quantized-direction
    // certificates up to the generic-kernel boundary.
    for d in [2usize, 3, 5, 8] {
        let n = match d {
            2 | 3 => 400,
            5 => 150,
            _ => 60,
        };
        let rel = WorkloadSpec::new(Distribution::AntiCorrelated, d, n, 700 + d as u64).generate();
        let idx = DualLayerIndex::build(&rel, DlOptions::dl_plus());
        assert_cache_identical(&idx, d, 50 + d as u64, &format!("d={d}"));
    }
}

#[test]
fn cache_matches_across_option_matrix() {
    let variants: Vec<(&str, DlOptions)> = vec![
        ("DL", DlOptions::dl()),
        ("DL+", DlOptions::dl_plus()),
        ("DG", DlOptions::dg()),
        ("DG+", DlOptions::dg_plus()),
        (
            "DL+/AllFacets",
            DlOptions {
                eds_policy: EdsPolicy::AllFacets,
                ..DlOptions::dl_plus()
            },
        ),
        (
            "DL+/clustered-zero",
            DlOptions {
                zero: ZeroMode::Clustered { clusters: 5 },
                ..DlOptions::dl_plus()
            },
        ),
        (
            "DL+/no-zero",
            DlOptions {
                zero: ZeroMode::None,
                ..DlOptions::dl_plus()
            },
        ),
    ];
    let rel3 = WorkloadSpec::new(Distribution::Independent, 3, 250, 61).generate();
    for (name, opts) in &variants {
        let idx = DualLayerIndex::build(&rel3, opts.clone());
        assert_cache_identical(&idx, 3, 9, name);
    }
    // 2-d without the exact zero layer: the cache must fall back to
    // quantized keys (no Zero2d cells to key by) and still stay exact.
    let rel2 = WorkloadSpec::new(Distribution::AntiCorrelated, 2, 300, 62).generate();
    for (name, opts) in [
        ("2d DL+ exact-zero", DlOptions::dl_plus()),
        (
            "2d DL+ no-zero",
            DlOptions {
                zero: ZeroMode::None,
                ..DlOptions::dl_plus()
            },
        ),
        (
            "2d DL+ clustered-zero",
            DlOptions {
                zero: ZeroMode::Clustered { clusters: 4 },
                ..DlOptions::dl_plus()
            },
        ),
    ] {
        let idx = DualLayerIndex::build(&rel2, opts.clone());
        assert_cache_identical(&idx, 2, 8, name);
    }
    // Degenerate sizes ride along: empty and near-empty relations.
    for n in [0usize, 1, 2] {
        for d in [2usize, 3] {
            let rel = WorkloadSpec::new(Distribution::Independent, d, n, 5).generate();
            let idx = DualLayerIndex::build(&rel, DlOptions::dl_plus());
            assert_cache_identical(&idx, d, 3, &format!("n={n} d={d}"));
        }
    }
}

/// Seeded churn property test: a cached dynamic index and an uncached
/// twin receive the identical interleaving of inserts, deletes, repeated
/// queries, and forced compactions. Every query answer must match — any
/// missed invalidation would surface as a stale cached id here, because
/// repeated weights deliberately re-query entries filled before
/// mutations.
#[test]
fn dynamic_churn_never_serves_stale_answers() {
    for d in [2usize, 3] {
        let rel = WorkloadSpec::new(Distribution::Independent, d, 200, 40 + d as u64).generate();
        let mut cached = DynamicIndex::new(&rel, DlOptions::dl_plus(), 0.3);
        let mut plain = cached.clone();
        let cache = Arc::new(ResultCache::default());
        cached.attach_cache(Arc::clone(&cache));
        let mut rng = StdRng::seed_from_u64(2026 + d as u64);
        // A small weight pool: queries repeat, so cache entries filled
        // before a mutation get re-requested after it.
        let pool: Vec<Weights> = (0..6).map(|_| Weights::random(d, &mut rng)).collect();
        let mut known: Vec<u64> = (0..rel.len() as u64).collect();
        for step in 0..500 {
            let r: f64 = rng.gen();
            if r < 0.35 {
                let row: Vec<f64> = (0..d).map(|_| rng.gen_range(0.001..0.999)).collect();
                let h1 = cached.insert(&row).unwrap();
                let h2 = plain.insert(&row).unwrap();
                assert_eq!(h1, h2, "step {step}: handle streams diverged");
                known.push(h1);
            } else if r < 0.5 && !known.is_empty() {
                let h = known[rng.gen_range(0..known.len())];
                assert_eq!(cached.delete(h), plain.delete(h), "step {step}");
            } else if r < 0.53 {
                cached.compact();
                plain.compact();
            } else {
                let k = rng.gen_range(1..=20);
                let w = &pool[rng.gen_range(0..pool.len())];
                let (want, _) = plain.topk(w, k);
                // Twice back-to-back: the first fills (or validates), the
                // second exercises the hit path against the same oracle.
                for pass in 0..2 {
                    let (got, _) = cached.topk(w, k);
                    assert_eq!(
                        got, want,
                        "d={d} step {step} k={k} pass={pass}: stale answer"
                    );
                }
            }
        }
        let s = cache.stats();
        assert!(s.hits > 0, "d={d}: churn run must still hit: {s:?}");
        assert!(
            s.invalidations > 100,
            "d={d}: every mutation must invalidate: {s:?}"
        );
    }
}

/// Recovery: a cache that survives a `to_state`/`from_state` round trip
/// (the crash-recovery path) is re-attached to the restored index and
/// must never serve entries from the index's previous life — attachment
/// invalidates, and replayed WAL inserts keep invalidating.
#[test]
fn recovery_and_replay_invalidate_reattached_caches() {
    for d in [2usize, 3] {
        let rel = WorkloadSpec::new(Distribution::AntiCorrelated, d, 150, 90 + d as u64).generate();
        let mut dynamic = DynamicIndex::new(&rel, DlOptions::dl_plus(), 5.0);
        let cache = Arc::new(ResultCache::default());
        dynamic.attach_cache(Arc::clone(&cache));
        let mut rng = StdRng::seed_from_u64(7 + d as u64);
        let pool: Vec<Weights> = (0..5).map(|_| Weights::random(d, &mut rng)).collect();
        // Fill the cache, then capture state.
        for w in &pool {
            for k in [1usize, 5, 12] {
                dynamic.topk(w, k);
            }
        }
        assert!(!cache.is_empty(), "d={d}: warm-up must fill the cache");
        let state = dynamic.to_state();
        // Restore and re-attach the *same* cache object, still holding
        // entries from before the "crash".
        let mut restored = DynamicIndex::from_state(&state, DlOptions::dl_plus(), 5.0).unwrap();
        restored.attach_cache(Arc::clone(&cache));
        let mut reference = DynamicIndex::from_state(&state, DlOptions::dl_plus(), 5.0).unwrap();
        // Replay WAL-style inserts that land in the top ranks (rows near
        // the origin score best under minimization) so any stale cached
        // answer would be visibly wrong.
        for h in state.next_handle..state.next_handle + 10 {
            let row: Vec<f64> = (0..d).map(|_| rng.gen_range(0.001..0.05)).collect();
            restored.replay_insert(h, &row).unwrap();
            reference.replay_insert(h, &row).unwrap();
        }
        for (qi, w) in pool.iter().enumerate() {
            for k in [1usize, 5, 12] {
                let (got, _) = restored.topk(w, k);
                let (want, _) = reference.topk(w, k);
                assert_eq!(got, want, "d={d} q={qi} k={k}: stale post-recovery answer");
            }
        }
        // Second pass over the same weights: now entries are fresh and
        // hits are expected — and still identical.
        let hits_before = cache.stats().hits;
        for w in &pool {
            let (got, _) = restored.topk(w, 5);
            let (want, _) = reference.topk(w, 5);
            assert_eq!(got, want, "d={d}: post-replay refill diverged");
        }
        assert!(
            cache.stats().hits > hits_before,
            "d={d}: refilled entries must hit: {:?}",
            cache.stats()
        );
    }
}
