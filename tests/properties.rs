//! Property-based tests (proptest) over arbitrary relations, weights, and
//! retrieval sizes: correctness and the paper's cost dominance must hold
//! for *any* input, not just the synthetic generators.

use drtopk::baselines::{HlIndex, OnionIndex};
use drtopk::common::{dominates, topk_bruteforce, Relation, TupleId, Weights};
use drtopk::core::{DlOptions, DualLayerIndex};
use drtopk::geometry::{convex_skyline, facet_is_eds};
use drtopk::skyline::{bskytree, naive};
use proptest::prelude::*;

/// An arbitrary relation: d in 2..=4, n in 1..=60, values in (0,1) from a
/// coarse grid so duplicates and collinear/coplanar cases appear often.
fn arb_relation() -> impl Strategy<Value = Relation> {
    (2usize..=4, 1usize..=60).prop_flat_map(|(d, n)| {
        proptest::collection::vec(
            proptest::collection::vec((1u32..=40).prop_map(|v| v as f64 / 41.0), d),
            n,
        )
        .prop_map(move |rows| Relation::from_rows(d, &rows).expect("grid rows are valid"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dl_matches_oracle_scores(rel in arb_relation(), k in 1usize..=20, seed in 0u64..1000) {
        let d = rel.dims();
        let w = {
            // Derive weights deterministically from the seed.
            let mut raw = Vec::with_capacity(d);
            let mut s = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            for _ in 0..d {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                raw.push(1.0 + (s >> 33) as f64 / u32::MAX as f64);
            }
            Weights::new(raw).unwrap()
        };
        let idx = DualLayerIndex::build(&rel, DlOptions::dl_plus());
        let got = idx.topk(&w, k);
        let want = topk_bruteforce(&rel, &w, k);
        // Grid data produces exact ties; compare score sequences, which are
        // invariant under tie permutations, plus set size.
        let gs: Vec<f64> = got.ids.iter().map(|&t| w.score(rel.tuple(t))).collect();
        let ws: Vec<f64> = want.iter().map(|&t| w.score(rel.tuple(t))).collect();
        prop_assert_eq!(gs.len(), ws.len());
        for (a, b) in gs.iter().zip(&ws) {
            prop_assert!((a - b).abs() < 1e-9, "score mismatch: {} vs {}", a, b);
        }
    }

    #[test]
    fn skyline_algorithms_agree(rel in arb_relation()) {
        let ids: Vec<TupleId> = (0..rel.len() as TupleId).collect();
        prop_assert_eq!(bskytree(&rel, &ids), naive(&rel, &ids));
    }

    #[test]
    fn convex_skyline_members_are_skyline_tuples(rel in arb_relation()) {
        let ids: Vec<TupleId> = (0..rel.len() as TupleId).collect();
        let cs = convex_skyline(&rel, &ids);
        prop_assert!(!cs.members.is_empty());
        // Every convex-skyline member is undominated (CSKY ⊆ SKY).
        for &p in &cs.members {
            let t = rel.tuple(ids[p as usize]);
            for &o in &ids {
                if o != ids[p as usize] {
                    prop_assert!(
                        !dominates(rel.tuple(o), t),
                        "convex skyline member {} is dominated", ids[p as usize]
                    );
                }
            }
        }
    }

    #[test]
    fn eds_guarantee_holds_for_random_facets(
        rel in arb_relation(),
        picks in proptest::collection::vec(0usize..1000, 5),
        wseed in 1u32..50,
    ) {
        let n = rel.len();
        let d = rel.dims();
        let facet: Vec<TupleId> = picks.iter().take(d).map(|&p| (p % n) as TupleId).collect();
        let target = (picks[4] % n) as TupleId;
        if facet.contains(&target) {
            return Ok(());
        }
        if facet_is_eds(&rel, &facet, target) {
            // The defining guarantee: for EVERY positive weight vector some
            // facet member scores strictly below the target.
            for i in 0..5 {
                let raw: Vec<f64> =
                    (0..d).map(|j| 1.0 + ((wseed as usize + i * 7 + j * 13) % 17) as f64).collect();
                let w = Weights::new(raw).unwrap();
                let tmin = facet.iter().map(|&f| w.score(rel.tuple(f))).fold(f64::INFINITY, f64::min);
                prop_assert!(
                    tmin < w.score(rel.tuple(target)) + 1e-12,
                    "EDS member must precede target for every weight"
                );
            }
        }
    }

    #[test]
    fn baselines_match_oracle_scores(rel in arb_relation(), k in 1usize..=15) {
        let d = rel.dims();
        let w = Weights::uniform(d);
        let want: Vec<f64> = topk_bruteforce(&rel, &w, k)
            .iter().map(|&t| w.score(rel.tuple(t))).collect();
        let onion = OnionIndex::build(&rel, 0);
        let hl = HlIndex::build(&rel, 0);
        let o: Vec<f64> = onion.topk(&w, k).0.iter().map(|&t| w.score(rel.tuple(t))).collect();
        let h: Vec<f64> = hl.topk_hl_plus(&w, k).0.iter().map(|&t| w.score(rel.tuple(t))).collect();
        prop_assert_eq!(o.len(), want.len());
        prop_assert_eq!(h.len(), want.len());
        for (a, b) in o.iter().zip(&want) {
            prop_assert!((a - b).abs() < 1e-9, "Onion score mismatch");
        }
        for (a, b) in h.iter().zip(&want) {
            prop_assert!((a - b).abs() < 1e-9, "HL+ score mismatch");
        }
    }

    #[test]
    fn cost_dominance_dl_vs_dg(rel in arb_relation(), k in 1usize..=15) {
        let d = rel.dims();
        let w = Weights::uniform(d);
        let dl = DualLayerIndex::build(&rel, DlOptions::dl());
        let dg = DualLayerIndex::build(&rel, DlOptions::dg());
        prop_assert!(dl.topk(&w, k).cost.total() <= dg.topk(&w, k).cost.total());
    }
}
