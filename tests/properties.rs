//! Randomized property tests over arbitrary relations, weights, and
//! retrieval sizes: correctness and the paper's cost dominance must hold
//! for *any* input, not just the synthetic generators. Seeded loops stand
//! in for a property-testing framework (the build is offline); every case
//! is deterministic per seed, and failures print the seed that produced
//! them.

use drtopk::baselines::{HlIndex, OnionIndex};
use drtopk::common::{dominates, topk_bruteforce, Relation, TupleId, Weights};
use drtopk::core::{DlOptions, DualLayerIndex};
use drtopk::geometry::{convex_skyline, facet_is_eds};
use drtopk::skyline::{bskytree, naive};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An arbitrary relation: d in 2..=4, n in 1..=60, values in (0,1) from a
/// coarse grid so duplicates and collinear/coplanar cases appear often.
fn arb_relation(rng: &mut StdRng) -> Relation {
    let d = rng.gen_range(2usize..=4);
    let n = rng.gen_range(1usize..=60);
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|_| {
            (0..d)
                .map(|_| rng.gen_range(1u32..=40) as f64 / 41.0)
                .collect()
        })
        .collect();
    Relation::from_rows(d, &rows).expect("grid rows are valid")
}

#[test]
fn dl_matches_oracle_scores() {
    for case in 0u64..64 {
        let mut rng = StdRng::seed_from_u64(0xD1_0000 + case);
        let rel = arb_relation(&mut rng);
        let k = rng.gen_range(1usize..=20);
        let d = rel.dims();
        let raw: Vec<f64> = (0..d).map(|_| rng.gen_range(1.0..2.0f64)).collect();
        let w = Weights::new(raw).unwrap();
        let idx = DualLayerIndex::build(&rel, DlOptions::dl_plus());
        let got = idx.topk(&w, k);
        let want = topk_bruteforce(&rel, &w, k);
        // Grid data produces exact ties; compare score sequences, which are
        // invariant under tie permutations, plus set size.
        let gs: Vec<f64> = got.ids.iter().map(|&t| w.score(rel.tuple(t))).collect();
        let ws: Vec<f64> = want.iter().map(|&t| w.score(rel.tuple(t))).collect();
        assert_eq!(gs.len(), ws.len(), "case {case}");
        for (a, b) in gs.iter().zip(&ws) {
            assert!((a - b).abs() < 1e-9, "case {case}: score {a} vs {b}");
        }
    }
}

#[test]
fn skyline_algorithms_agree() {
    for case in 0u64..64 {
        let mut rng = StdRng::seed_from_u64(0xD2_0000 + case);
        let rel = arb_relation(&mut rng);
        let ids: Vec<TupleId> = (0..rel.len() as TupleId).collect();
        assert_eq!(bskytree(&rel, &ids), naive(&rel, &ids), "case {case}");
    }
}

#[test]
fn convex_skyline_members_are_skyline_tuples() {
    for case in 0u64..64 {
        let mut rng = StdRng::seed_from_u64(0xD3_0000 + case);
        let rel = arb_relation(&mut rng);
        let ids: Vec<TupleId> = (0..rel.len() as TupleId).collect();
        let cs = convex_skyline(&rel, &ids);
        assert!(!cs.members.is_empty(), "case {case}");
        // Every convex-skyline member is undominated (CSKY ⊆ SKY).
        for &p in &cs.members {
            let t = rel.tuple(ids[p as usize]);
            for &o in &ids {
                if o != ids[p as usize] {
                    assert!(
                        !dominates(rel.tuple(o), t),
                        "case {case}: convex skyline member {} is dominated",
                        ids[p as usize]
                    );
                }
            }
        }
    }
}

#[test]
fn eds_guarantee_holds_for_random_facets() {
    for case in 0u64..64 {
        let mut rng = StdRng::seed_from_u64(0xD4_0000 + case);
        let rel = arb_relation(&mut rng);
        let n = rel.len();
        let d = rel.dims();
        let facet: Vec<TupleId> = (0..d)
            .map(|_| rng.gen_range(0usize..1000) % n)
            .map(|p| p as TupleId)
            .collect();
        let target = (rng.gen_range(0usize..1000) % n) as TupleId;
        let wseed = rng.gen_range(1u32..50);
        if facet.contains(&target) {
            continue;
        }
        if facet_is_eds(&rel, &facet, target) {
            // The defining guarantee: for EVERY positive weight vector some
            // facet member scores strictly below the target.
            for i in 0..5 {
                let raw: Vec<f64> = (0..d)
                    .map(|j| 1.0 + ((wseed as usize + i * 7 + j * 13) % 17) as f64)
                    .collect();
                let w = Weights::new(raw).unwrap();
                let tmin = facet
                    .iter()
                    .map(|&f| w.score(rel.tuple(f)))
                    .fold(f64::INFINITY, f64::min);
                assert!(
                    tmin < w.score(rel.tuple(target)) + 1e-12,
                    "case {case}: EDS member must precede target for every weight"
                );
            }
        }
    }
}

#[test]
fn baselines_match_oracle_scores() {
    for case in 0u64..64 {
        let mut rng = StdRng::seed_from_u64(0xD5_0000 + case);
        let rel = arb_relation(&mut rng);
        let k = rng.gen_range(1usize..=15);
        let d = rel.dims();
        let w = Weights::uniform(d);
        let want: Vec<f64> = topk_bruteforce(&rel, &w, k)
            .iter()
            .map(|&t| w.score(rel.tuple(t)))
            .collect();
        let onion = OnionIndex::build(&rel, 0);
        let hl = HlIndex::build(&rel, 0);
        let o: Vec<f64> = onion
            .topk(&w, k)
            .0
            .iter()
            .map(|&t| w.score(rel.tuple(t)))
            .collect();
        let h: Vec<f64> = hl
            .topk_hl_plus(&w, k)
            .0
            .iter()
            .map(|&t| w.score(rel.tuple(t)))
            .collect();
        assert_eq!(o.len(), want.len(), "case {case}");
        assert_eq!(h.len(), want.len(), "case {case}");
        for (a, b) in o.iter().zip(&want) {
            assert!((a - b).abs() < 1e-9, "case {case}: Onion score mismatch");
        }
        for (a, b) in h.iter().zip(&want) {
            assert!((a - b).abs() < 1e-9, "case {case}: HL+ score mismatch");
        }
    }
}

#[test]
fn cost_dominance_dl_vs_dg() {
    for case in 0u64..64 {
        let mut rng = StdRng::seed_from_u64(0xD6_0000 + case);
        let rel = arb_relation(&mut rng);
        let k = rng.gen_range(1usize..=15);
        let d = rel.dims();
        let w = Weights::uniform(d);
        let dl = DualLayerIndex::build(&rel, DlOptions::dl());
        let dg = DualLayerIndex::build(&rel, DlOptions::dg());
        assert!(
            dl.topk(&w, k).cost.total() <= dg.topk(&w, k).cost.total(),
            "case {case}"
        );
    }
}
