//! Query differential suite for the traversal-ordered layout, the fixed-d
//! scoring kernels, and the epoch-versioned scratch.
//!
//! The retained sequential reference build (`build_reference`) is the
//! oracle: the optimized build — renumbered nodes, arena-packed edges,
//! unrolled kernels — must return *identical* ids, Definition-9 costs, and
//! `QueryExplain` breakdowns on every cell of the matrix (dimensionality,
//! size, options variant, build thread count). A separate seeded property
//! test pins the epoch-scratch contract: reusing one scratch across an
//! arbitrary query history never changes any answer versus a fresh
//! scratch.

use drtopk::common::{Distribution, Weights, WorkloadSpec};
use drtopk::core::{DlOptions, DualLayerIndex, EdsPolicy, QueryScratch, ZeroMode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Compares ids, costs, and explain output of `idx` against `reference`
/// for a spread of k values and seeded random weight vectors.
fn assert_query_identical(
    reference: &DualLayerIndex,
    idx: &DualLayerIndex,
    d: usize,
    seed: u64,
    ctx: &str,
) {
    let n = reference.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ks = vec![1, 2, 7, n / 2, n];
    ks.retain(|&k| k > 0);
    ks.dedup();
    if ks.is_empty() {
        ks.push(1); // n = 0: still exercise the empty-answer path
    }
    for k in ks {
        let w = Weights::random(d, &mut rng);
        let want = reference.topk(&w, k);
        let got = idx.topk(&w, k);
        assert_eq!(got.ids, want.ids, "{ctx} k={k}: ids differ");
        assert_eq!(got.cost, want.cost, "{ctx} k={k}: costs differ");
        let (eres, eexp) = reference.explain(&w, k);
        let (ores, oexp) = idx.explain(&w, k);
        assert_eq!(ores, eres, "{ctx} k={k}: explain result differs");
        assert_eq!(oexp, eexp, "{ctx} k={k}: explain breakdown differs");
    }
}

/// Builds the optimized index at the given thread count and checks it
/// against the reference build, query-for-query.
fn assert_matrix_cell(rel: &drtopk::common::Relation, base: &DlOptions, seed: u64, ctx: &str) {
    let reference = DualLayerIndex::build_reference(rel, base.clone());
    let d = rel.dims();
    for threads in [1usize, 4] {
        let idx = DualLayerIndex::build(
            rel,
            DlOptions {
                parallel: true,
                build_threads: threads,
                ..base.clone()
            },
        );
        assert_query_identical(
            &reference,
            &idx,
            d,
            seed,
            &format!("{ctx} threads={threads}"),
        );
    }
}

#[test]
fn kernels_match_reference_across_dimensionalities() {
    // d = 1..=8 spans every fixed-d kernel plus the generic fallback's
    // boundary. Convex-hull fine-layer cost is exponential in d, so n
    // shrinks as d grows to keep the debug profile inside tier-1 time.
    for d in 1..=8usize {
        let n = match d {
            1..=4 => 150,
            5 => 120,
            6 => 60,
            7 => 40,
            _ => 30,
        };
        let rel = WorkloadSpec::new(Distribution::AntiCorrelated, d, n, 900 + d as u64).generate();
        assert_matrix_cell(
            &rel,
            &DlOptions::dl_plus(),
            31 + d as u64,
            &format!("d={d}"),
        );
    }
}

#[test]
fn all_variants_match_reference() {
    let variants: Vec<(&str, DlOptions)> = vec![
        ("DL", DlOptions::dl()),
        ("DL+", DlOptions::dl_plus()),
        ("DG", DlOptions::dg()),
        ("DG+", DlOptions::dg_plus()),
        (
            "DL+/AllFacets",
            DlOptions {
                eds_policy: EdsPolicy::AllFacets,
                ..DlOptions::dl_plus()
            },
        ),
        (
            "DL+/BestUniform",
            DlOptions {
                eds_policy: EdsPolicy::BestUniform,
                ..DlOptions::dl_plus()
            },
        ),
        (
            "DL/capped-fine",
            DlOptions {
                max_fine_layers: 3,
                ..DlOptions::dl()
            },
        ),
        (
            "DL+/clustered-zero",
            DlOptions {
                zero: ZeroMode::Clustered { clusters: 7 },
                ..DlOptions::dl_plus()
            },
        ),
        (
            "DL+/no-zero",
            DlOptions {
                zero: ZeroMode::None,
                ..DlOptions::dl_plus()
            },
        ),
    ];
    let rel3 = WorkloadSpec::new(Distribution::Independent, 3, 250, 61).generate();
    for (name, base) in &variants {
        assert_matrix_cell(&rel3, base, 7, name);
    }
    // 2-d exact zero layer: the chain is seeded per query by weight range.
    let rel2 = WorkloadSpec::new(Distribution::AntiCorrelated, 2, 300, 62).generate();
    assert_matrix_cell(&rel2, &DlOptions::dl_plus(), 8, "DL+ 2d exact-zero");
}

#[test]
fn degenerate_sizes_match_reference() {
    for n in [0usize, 1, 2] {
        for d in [1usize, 2, 3] {
            let rel = WorkloadSpec::new(Distribution::Independent, d, n, 5).generate();
            assert_matrix_cell(&rel, &DlOptions::dl_plus(), 3, &format!("n={n} d={d}"));
        }
    }
}

/// The 100k sample cell is release-only: the reference build is O(n²)-ish
/// in debug and would dominate tier-1 time.
#[test]
fn large_sample_matches_reference() {
    if cfg!(debug_assertions) {
        return;
    }
    for d in [2usize, 4] {
        let rel = WorkloadSpec::new(Distribution::Independent, d, 100_000, 77).generate();
        let reference = DualLayerIndex::build_reference(&rel, DlOptions::dl_plus());
        let idx = DualLayerIndex::build(
            &rel,
            DlOptions {
                parallel: true,
                build_threads: 4,
                ..DlOptions::dl_plus()
            },
        );
        assert_query_identical(&reference, &idx, d, 19, &format!("n=100k d={d}"));
    }
}

/// Seeded property test: after any sequence of queries through one reused
/// epoch scratch, the next query is indistinguishable from one answered on
/// a brand-new scratch — same ids, same cost — for arbitrary interleavings
/// of weights and k. This is the O(1)-reset correctness contract: stale
/// stamped state from query Q must never leak into query Q+1.
#[test]
fn epoch_scratch_reuse_is_indistinguishable_from_fresh() {
    let mut rng = StdRng::seed_from_u64(20_240_808);
    for d in [2usize, 3, 5] {
        let n = if cfg!(debug_assertions) { 300 } else { 2_000 };
        let rel = WorkloadSpec::new(Distribution::AntiCorrelated, d, n, 88 + d as u64).generate();
        let idx = DualLayerIndex::build(&rel, DlOptions::dl_plus());
        let mut reused = QueryScratch::for_index(&idx);
        for q in 0..40 {
            let w = Weights::random(d, &mut rng);
            let k = rng.gen_range(1..=n);
            let with_reused = idx.topk_with_scratch(&w, k, &mut reused);
            let mut fresh = QueryScratch::for_index(&idx);
            let with_fresh = idx.topk_with_scratch(&w, k, &mut fresh);
            assert_eq!(
                with_reused, with_fresh,
                "d={d} query {q}: reused scratch diverged from fresh"
            );
        }
        // Rebinding: the same scratch object must also serve an index of a
        // different size (it rebuilds itself on first reset).
        let rel_small = WorkloadSpec::new(Distribution::Independent, d, 50, 4).generate();
        let idx_small = DualLayerIndex::build(&rel_small, DlOptions::dl_plus());
        let w = Weights::uniform(d);
        assert_eq!(
            idx_small.topk_with_scratch(&w, 10, &mut reused),
            idx_small.topk(&w, 10),
            "d={d}: rebound scratch diverged"
        );
    }
}
