//! Locks the public facade API: everything README advertises must work
//! through `drtopk::` paths — persistence, dynamic updates, monotone and
//! threshold queries, the list-based baselines, ingestion.

use drtopk::common::{
    relation_from_csv, topk_bruteforce, ColumnSpec, Direction, Distribution, Weights, WorkloadSpec,
};
use drtopk::core::{
    DlOptions, DualLayerIndex, DynamicIndex, QueryScratch, WeightedPower, ZeroMode,
};
use drtopk::lists::{nra_topk, ta_topk};
use drtopk::storage::{
    blocks::{query_accesses, BlockLayout, Placement},
    load_index, save_index,
};

#[test]
fn end_to_end_service_lifecycle() {
    let data = WorkloadSpec::new(Distribution::AntiCorrelated, 3, 800, 5).generate();
    let index = DualLayerIndex::build(
        &data,
        DlOptions {
            parallel: true,
            ..DlOptions::default()
        },
    );
    let w = Weights::new(vec![0.2, 0.5, 0.3]).unwrap();
    let want = topk_bruteforce(&data, &w, 12);
    assert_eq!(index.topk(&w, 12).ids, want);

    // Persist / reload.
    let dir = std::env::temp_dir().join("drtopk_api_surface");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("idx.drt");
    save_index(&index, &path).unwrap();
    let reloaded = load_index(&path).unwrap();
    assert_eq!(reloaded.topk(&w, 12).ids, want);
    assert_eq!(reloaded.topk(&w, 12).cost, index.topk(&w, 12).cost);

    // Scratch reuse, monotone, threshold.
    let mut scratch = QueryScratch::for_index(&reloaded);
    assert_eq!(reloaded.topk_with_scratch(&w, 12, &mut scratch).ids, want);
    let f = WeightedPower {
        weights: vec![0.2, 0.5, 0.3],
        power: 2.0,
    };
    let mono = reloaded.topk_monotone(&f, 5);
    assert_eq!(mono.ids.len(), 5);
    let bound = w.score(data.tuple(want[4]));
    let range = reloaded.range_by_score(&w, bound);
    assert_eq!(&range.ids[..5], &want[..5]);

    // Block I/O accounting.
    let acc = query_accesses(&reloaded, &w, 12);
    let layout = BlockLayout::new(&reloaded, Placement::LayerClustered, 16);
    assert!(layout.blocks_touched(&acc) >= 1);
    assert!(layout.blocks_touched(&acc) <= acc.len());

    // Dynamic updates.
    let mut dynamic = DynamicIndex::new(&data, DlOptions::default(), 0.25);
    let h = dynamic.insert(&[0.001, 0.001, 0.001]).unwrap();
    assert_eq!(dynamic.topk(&w, 1).0, vec![h]);
    assert!(dynamic.delete(h));
}

#[test]
fn list_algorithms_through_facade() {
    let data = WorkloadSpec::new(Distribution::Independent, 3, 400, 9).generate();
    let w = Weights::uniform(3);
    let want = topk_bruteforce(&data, &w, 8);
    assert_eq!(ta_topk(&data, &w, 8).0, want);
    assert_eq!(nra_topk(&data, &w, 8).0, want);
}

#[test]
fn csv_to_index_pipeline() {
    let csv = "a,b\n0.9,10\n0.5,20\n0.1,30\n";
    let specs = [
        ColumnSpec {
            column: 0,
            direction: Direction::LowerIsBetter,
        },
        ColumnSpec {
            column: 1,
            direction: Direction::HigherIsBetter,
        },
    ];
    let (rel, norm) = relation_from_csv(csv.as_bytes(), &specs).unwrap();
    assert_eq!(rel.len(), 3);
    let idx = DualLayerIndex::build(
        &rel,
        DlOptions {
            zero: ZeroMode::None,
            ..DlOptions::default()
        },
    );
    // Row 2 (0.1, 30) is best on both axes after normalization.
    let res = idx.topk(&Weights::uniform(2), 1);
    assert_eq!(res.ids, vec![2]);
    let raw = norm.denormalize(rel.tuple(2)).unwrap();
    assert!((raw[0] - 0.1).abs() < 1e-9 && (raw[1] - 30.0).abs() < 1e-6);
}
