//! Cross-crate invariant tests: the paper's theorems and the structural
//! claims of Table II, checked on real index builds.

use drtopk::baselines::{dg_index, dg_plus_index, HlIndex};
use drtopk::common::{Distribution, Weights, WorkloadSpec};
use drtopk::core::verify::{verify_edge_soundness, verify_edges, verify_structure};
use drtopk::core::{DlOptions, DualLayerIndex};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn all_structural_invariants_hold() {
    let mut rng = StdRng::seed_from_u64(404);
    for dist in [Distribution::Independent, Distribution::AntiCorrelated] {
        for d in 2..=5 {
            let rel = WorkloadSpec::new(dist, d, 300, 71).generate();
            for opts in [
                DlOptions::dl(),
                DlOptions::dl_plus(),
                DlOptions::dg(),
                DlOptions::dg_plus(),
            ] {
                let idx = DualLayerIndex::build(&rel, opts);
                verify_structure(&idx);
                verify_edges(&idx);
                for _ in 0..3 {
                    verify_edge_soundness(&idx, &Weights::random(d, &mut rng));
                }
            }
        }
    }
}

#[test]
fn theorem_5_holds_per_query() {
    // cost(DL) ≤ cost(DG) for every single query — the inclusion is
    // deterministic, not just on average (DL's freeing condition is a
    // strict strengthening of DG's and both pop exactly the top-k).
    let mut rng = StdRng::seed_from_u64(6);
    for dist in [Distribution::Independent, Distribution::AntiCorrelated] {
        for d in 2..=4 {
            let rel = WorkloadSpec::new(dist, d, 500, 15).generate();
            let dl = DualLayerIndex::build(&rel, DlOptions::dl());
            let dg = dg_index(&rel);
            for k in [1, 10, 50] {
                for _ in 0..10 {
                    let w = Weights::random(d, &mut rng);
                    let (c_dl, c_dg) = (dl.topk(&w, k).cost.total(), dg.topk(&w, k).cost.total());
                    assert!(
                        c_dl <= c_dg,
                        "Theorem 5: DL={c_dl} DG={c_dg} ({dist:?} d={d} k={k})"
                    );
                }
            }
        }
    }
}

#[test]
fn dl_plus_beats_dg_plus_per_query() {
    // With the same clustering, DL+'s extra ∃-constraints and sub-layered
    // zero layer can only remove evaluations relative to DG+.
    let mut rng = StdRng::seed_from_u64(60);
    for d in [3, 4] {
        let rel = WorkloadSpec::new(Distribution::AntiCorrelated, d, 500, 44).generate();
        let dlp = DualLayerIndex::build(&rel, DlOptions::dl_plus());
        let dgp = dg_plus_index(&rel);
        for k in [1, 10, 50] {
            for _ in 0..5 {
                let w = Weights::random(d, &mut rng);
                let (a, b) = (dlp.topk(&w, k).cost.total(), dgp.topk(&w, k).cost.total());
                assert!(a <= b, "DL+={a} DG+={b} (d={d} k={k})");
            }
        }
    }
}

#[test]
fn table_2_selectivity_ordering() {
    // Table II: aggregate access cost ordering our approach < skyline-layer
    // approach, and selective-within-layer (HL+) < complete access. Checked
    // on the anti-correlated 4-d default where the gaps are widest.
    let rel = WorkloadSpec::new(Distribution::AntiCorrelated, 4, 800, 3).generate();
    let dl = DualLayerIndex::build(&rel, DlOptions::dl());
    let dlp = DualLayerIndex::build(&rel, DlOptions::dl_plus());
    let dg = dg_index(&rel);
    let hl = HlIndex::build(&rel, 64);
    let mut rng = StdRng::seed_from_u64(9);
    let (mut c_dl, mut c_dlp, mut c_dg, mut c_hlp) = (0u64, 0u64, 0u64, 0u64);
    for _ in 0..20 {
        let w = Weights::random(4, &mut rng);
        c_dl += dl.topk(&w, 10).cost.total();
        c_dlp += dlp.topk(&w, 10).cost.total();
        c_dg += dg.topk(&w, 10).cost.total();
        c_hlp += hl.topk_hl_plus(&w, 10).1.total();
    }
    assert!(c_dl < c_dg, "DL ({c_dl}) must beat DG ({c_dg})");
    assert!(c_dlp <= c_dl, "DL+ ({c_dlp}) must not exceed DL ({c_dl})");
    assert!(c_dlp < c_hlp, "DL+ ({c_dlp}) must beat HL+ ({c_hlp})");
}

#[test]
fn first_layer_access_is_selective_for_plus_variants() {
    // The paper's Section V motivation: without a zero layer the whole L¹¹
    // is evaluated; with it only part of L¹ is touched.
    let rel = WorkloadSpec::new(Distribution::AntiCorrelated, 4, 800, 21).generate();
    let dl = DualLayerIndex::build(&rel, DlOptions::dl());
    let dlp = DualLayerIndex::build(&rel, DlOptions::dl_plus());
    let first_fine = dl.stats().first_fine_size as u64;
    let mut rng = StdRng::seed_from_u64(123);
    for _ in 0..10 {
        let w = Weights::random(4, &mut rng);
        let base = dl.topk(&w, 1).cost;
        assert!(
            base.total() >= first_fine,
            "DL evaluates all of L11 for top-1"
        );
        let plus = dlp.topk(&w, 1).cost;
        assert!(
            plus.total() < base.total(),
            "DL+ must touch less than DL for top-1"
        );
    }
}

#[test]
fn build_is_deterministic() {
    let rel = WorkloadSpec::new(Distribution::Independent, 3, 300, 5).generate();
    let a = DualLayerIndex::build(&rel, DlOptions::default());
    let b = DualLayerIndex::build(&rel, DlOptions::default());
    assert_eq!(a.stats(), b.stats());
    let w = Weights::uniform(3);
    assert_eq!(a.topk(&w, 20).ids, b.topk(&w, 20).ids);
}
