//! Cross-crate differential tests: every query processor in the workspace
//! must return exactly the brute-force top-k (scores ascending, ties by
//! tuple id) on every distribution, dimensionality, and retrieval size.

use drtopk::baselines::{dg_index, dg_plus_index, HlIndex, OnionIndex};
use drtopk::common::{topk_bruteforce, Distribution, Weights, WorkloadSpec};
use drtopk::core::{DlOptions, DualLayerIndex, EdsPolicy, ZeroMode};
use drtopk::lists::ta_topk;
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 400;

fn distributions() -> [Distribution; 3] {
    [
        Distribution::Independent,
        Distribution::AntiCorrelated,
        Distribution::Correlated,
    ]
}

#[test]
fn dual_layer_variants_match_oracle() {
    let mut rng = StdRng::seed_from_u64(555);
    for dist in distributions() {
        for d in 2..=5 {
            let rel = WorkloadSpec::new(dist, d, N, 808).generate();
            let variants = [
                ("DL", DlOptions::dl()),
                ("DL+", DlOptions::dl_plus()),
                ("DG", DlOptions::dg()),
                ("DG+", DlOptions::dg_plus()),
            ];
            for (name, opts) in variants {
                let idx = DualLayerIndex::build(&rel, opts);
                for k in [1, 2, 10, 50, N] {
                    let w = Weights::random(d, &mut rng);
                    let got = idx.topk(&w, k);
                    let want = topk_bruteforce(&rel, &w, k);
                    assert_eq!(got.ids, want, "{name} {dist:?} d={d} k={k}");
                    assert!(
                        got.cost.evaluated <= N as u64,
                        "{name}: cannot evaluate more tuples than exist"
                    );
                }
            }
        }
    }
}

#[test]
fn eds_policies_all_correct() {
    let mut rng = StdRng::seed_from_u64(77);
    for policy in [
        EdsPolicy::FirstFacet,
        EdsPolicy::AllFacets,
        EdsPolicy::BestUniform,
    ] {
        for d in [2, 4] {
            let rel = WorkloadSpec::new(Distribution::AntiCorrelated, d, N, 31).generate();
            let idx = DualLayerIndex::build(
                &rel,
                DlOptions {
                    eds_policy: policy,
                    ..DlOptions::dl()
                },
            );
            for k in [1, 10, 40] {
                let w = Weights::random(d, &mut rng);
                assert_eq!(
                    idx.topk(&w, k).ids,
                    topk_bruteforce(&rel, &w, k),
                    "{policy:?} d={d} k={k}"
                );
            }
        }
    }
}

#[test]
fn zero_modes_all_correct() {
    let mut rng = StdRng::seed_from_u64(17);
    for zero in [
        ZeroMode::None,
        ZeroMode::Clustered { clusters: 0 },
        ZeroMode::Clustered { clusters: 3 },
        ZeroMode::Clustered { clusters: 64 },
        ZeroMode::Exact2d,
        ZeroMode::Auto,
    ] {
        for d in [2, 3] {
            let rel = WorkloadSpec::new(Distribution::Independent, d, N, 5).generate();
            let idx = DualLayerIndex::build(
                &rel,
                DlOptions {
                    zero,
                    ..DlOptions::default()
                },
            );
            for k in [1, 10, 60] {
                let w = Weights::random(d, &mut rng);
                assert_eq!(
                    idx.topk(&w, k).ids,
                    topk_bruteforce(&rel, &w, k),
                    "{zero:?} d={d} k={k}"
                );
            }
        }
    }
}

#[test]
fn fine_layer_cap_is_correct() {
    let mut rng = StdRng::seed_from_u64(91);
    let rel = WorkloadSpec::new(Distribution::AntiCorrelated, 3, N, 13).generate();
    for cap in [1, 2, 5] {
        let idx = DualLayerIndex::build(
            &rel,
            DlOptions {
                max_fine_layers: cap,
                ..DlOptions::dl()
            },
        );
        for k in [1, 20] {
            let w = Weights::random(3, &mut rng);
            assert_eq!(
                idx.topk(&w, k).ids,
                topk_bruteforce(&rel, &w, k),
                "cap={cap} k={k}"
            );
        }
    }
}

#[test]
fn baselines_match_oracle() {
    let mut rng = StdRng::seed_from_u64(4242);
    for dist in distributions() {
        for d in 2..=4 {
            let rel = WorkloadSpec::new(dist, d, N, 2027).generate();
            let onion = OnionIndex::build(&rel, 0);
            let onion_capped = OnionIndex::build(&rel, 8);
            let hl = HlIndex::build(&rel, 0);
            let dg = dg_index(&rel);
            let dgp = dg_plus_index(&rel);
            for k in [1, 10, 50] {
                let w = Weights::random(d, &mut rng);
                let want = topk_bruteforce(&rel, &w, k);
                assert_eq!(onion.topk(&w, k).0, want, "Onion {dist:?} d={d} k={k}");
                assert_eq!(
                    onion_capped.topk(&w, k).0,
                    want,
                    "Onion-capped {dist:?} d={d} k={k}"
                );
                assert_eq!(hl.topk_hl(&w, k).0, want, "HL {dist:?} d={d} k={k}");
                assert_eq!(hl.topk_hl_plus(&w, k).0, want, "HL+ {dist:?} d={d} k={k}");
                assert_eq!(dg.topk(&w, k).ids, want, "DG {dist:?} d={d} k={k}");
                assert_eq!(dgp.topk(&w, k).ids, want, "DG+ {dist:?} d={d} k={k}");
                assert_eq!(ta_topk(&rel, &w, k).0, want, "TA {dist:?} d={d} k={k}");
            }
        }
    }
}

#[test]
fn repeated_queries_are_deterministic() {
    let rel = WorkloadSpec::new(Distribution::AntiCorrelated, 4, N, 3).generate();
    let idx = DualLayerIndex::build(&rel, DlOptions::default());
    let w = Weights::new(vec![0.1, 0.2, 0.3, 0.4]).unwrap();
    let first = idx.topk(&w, 25);
    for _ in 0..5 {
        let again = idx.topk(&w, 25);
        assert_eq!(again.ids, first.ids);
        assert_eq!(again.cost, first.cost);
    }
}
