//! End-to-end pinning of every worked example in the paper, through the
//! public facade: Example 1 (top-5), Fig. 2 (layerings), Examples 2–4
//! (EDS sets, edges, statuses), Example 5 / Table III (query trace).

use drtopk::baselines::OnionIndex;
use drtopk::common::relation::{toy_dataset, toy_id};
use drtopk::common::{TupleId, Weights};
use drtopk::core::{DlOptions, DualLayerIndex, NodeId};
use drtopk::geometry::facet_is_eds;
use drtopk::skyline::{skyline_layers, SkylineAlgo};

fn ids(labels: &[char]) -> Vec<TupleId> {
    let mut v: Vec<TupleId> = labels.iter().map(|&c| toy_id(c)).collect();
    v.sort_unstable();
    v
}

#[test]
fn example_1_alice_and_betty() {
    let r = toy_dataset();
    let idx = DualLayerIndex::build(&r, DlOptions::default());
    // Alice: w = (0.5, 0.5), top-5 = {a, b, f, d, e}; F(a) = 3.5 (×10).
    let alice = Weights::new(vec![0.5, 0.5]).unwrap();
    let top5 = idx.topk(&alice, 5);
    assert_eq!(
        top5.ids,
        vec![
            toy_id('a'),
            toy_id('b'),
            toy_id('f'),
            toy_id('d'),
            toy_id('e')
        ]
    );
    assert!((alice.score(r.tuple(toy_id('a'))) * 10.0 - 3.5).abs() < 1e-9);
    // Betty: w = (0.75, 0.25) — price matters more; results may differ.
    let betty = Weights::new(vec![0.75, 0.25]).unwrap();
    let betty_top5 = idx.topk(&betty, 5);
    assert_eq!(
        betty_top5.ids,
        drtopk::common::topk_bruteforce(&r, &betty, 5)
    );
}

#[test]
fn fig_2a_skyline_layers() {
    let r = toy_dataset();
    let all: Vec<TupleId> = (0..11).collect();
    let layers = skyline_layers(&r, &all, SkylineAlgo::BSkyTree);
    assert_eq!(
        layers,
        vec![
            ids(&['a', 'b', 'c', 'f', 'g']),
            ids(&['d', 'e', 'i', 'j']),
            ids(&['h', 'k'])
        ]
    );
}

#[test]
fn fig_2b_convex_layers() {
    let r = toy_dataset();
    let onion = OnionIndex::build(&r, 0);
    let got: Vec<Vec<TupleId>> = onion
        .layers()
        .iter()
        .map(|l| {
            let mut v = l.clone();
            v.sort_unstable();
            v
        })
        .collect();
    assert_eq!(
        got,
        vec![
            ids(&['a', 'b', 'c']),
            ids(&['d', 'f', 'g']),
            ids(&['e', 'j']),
            ids(&['h', 'i']),
            ids(&['k'])
        ]
    );
}

#[test]
fn example_2_eds_of_f() {
    let r = toy_dataset();
    // {a, b} is an EDS of f: the segment crosses f's dominating region.
    assert!(facet_is_eds(&r, &[toy_id('a'), toy_id('b')], toy_id('f')));
    // {b, c} is not an EDS of f, but is one of g.
    assert!(!facet_is_eds(&r, &[toy_id('b'), toy_id('c')], toy_id('f')));
    assert!(facet_is_eds(&r, &[toy_id('b'), toy_id('c')], toy_id('g')));
}

#[test]
fn example_3_dual_resolution_layer() {
    let r = toy_dataset();
    let idx = DualLayerIndex::build(&r, DlOptions::dl());
    let fine: Vec<Vec<Vec<TupleId>>> = idx
        .coarse_layers()
        .iter()
        .map(|l| {
            l.fine
                .iter()
                .map(|f| {
                    let mut v = f.clone();
                    v.sort_unstable();
                    v
                })
                .collect()
        })
        .collect();
    assert_eq!(
        fine,
        vec![
            vec![ids(&['a', 'b', 'c']), ids(&['f', 'g'])],
            vec![ids(&['d', 'e', 'j']), ids(&['i'])],
            vec![ids(&['h', 'k'])],
        ]
    );
    // "a ∀-dominates {d, e, i}".
    let mut a_out: Vec<NodeId> = idx.forall_out(toy_id('a') as NodeId).to_vec();
    a_out.sort_unstable();
    assert_eq!(
        a_out,
        ids(&['d', 'e', 'i'])
            .iter()
            .map(|&t| t as NodeId)
            .collect::<Vec<_>>()
    );
    // "b and c ∃-dominate g".
    assert_eq!(
        idx.exists_in(toy_id('g') as NodeId),
        vec![toy_id('b'), toy_id('c')]
    );
}

#[test]
fn example_4_statuses() {
    let r = toy_dataset();
    let idx = DualLayerIndex::build(&r, DlOptions::dl());
    // ∀-dominance-free initially: the first coarse layer.
    for c in ['a', 'b', 'c', 'f', 'g'] {
        assert_eq!(
            idx.forall_in_degree(toy_id(c) as NodeId),
            0,
            "{c} must be ∀-free"
        );
    }
    // ∃-dominance-free initially: first fine sublayer of each coarse layer.
    for c in ['a', 'b', 'c', 'd', 'e', 'j', 'h', 'k'] {
        assert_eq!(
            idx.exists_in_degree(toy_id(c) as NodeId),
            0,
            "{c} must be ∃-free"
        );
    }
    // i becomes ∀-free once a and f are reported.
    assert_eq!(
        idx.forall_in(toy_id('i') as NodeId),
        vec![toy_id('a'), toy_id('f')]
    );
    // f becomes ∃-free once a or b is reported.
    assert_eq!(
        idx.exists_in(toy_id('f') as NodeId),
        vec![toy_id('a'), toy_id('b')]
    );
}

#[test]
fn example_5_table_iii_trace() {
    let r = toy_dataset();
    let idx = DualLayerIndex::build(&r, DlOptions::dl());
    let (res, trace) = idx.topk_traced(&Weights::uniform(2), 3);
    let id = |c: char| toy_id(c);
    // Steps 1-2: seed Q with L11 = {a, b, c}.
    assert_eq!(trace.seeds, vec![id('a'), id('b'), id('c')]);
    // Step 3-4: pop a, update {d, e, f, i}; Q = {b, f, d, e, c}.
    assert_eq!(trace.steps[0].popped, id('a'));
    assert_eq!(
        trace.steps[0].queue_after,
        vec![id('b'), id('f'), id('d'), id('e'), id('c')]
    );
    // Step 5-6: pop b, update {g, j}; Q = {f, d, e, c, g}.
    assert_eq!(trace.steps[1].popped, id('b'));
    assert_eq!(
        trace.steps[1].queue_after,
        vec![id('f'), id('d'), id('e'), id('c'), id('g')]
    );
    // Step 7: pop f; top-3 = {a, b, f}.
    assert_eq!(res.ids, vec![id('a'), id('b'), id('f')]);
}

#[test]
fn fig_7_zero_layer_clusters() {
    // Section V-B illustrated on the toy dataset: forcing a clustered zero
    // layer over L¹ = {a,b,c,f,g} produces pseudo-tuples that dominate
    // their clusters and cut first-layer access.
    use drtopk::core::ZeroMode;
    let r = toy_dataset();
    let idx = DualLayerIndex::build(
        &r,
        DlOptions {
            zero: ZeroMode::Clustered { clusters: 2 },
            ..DlOptions::default()
        },
    );
    assert_eq!(idx.stats().pseudo_tuples, 2);
    let w = Weights::uniform(2);
    let res = idx.topk(&w, 3);
    assert_eq!(res.ids, vec![toy_id('a'), toy_id('b'), toy_id('f')]);
    assert!(res.cost.pseudo_evaluated >= 1);
}
