//! Build differential suite: the optimized construction pipeline
//! (incremental sorted peeling, block-pruned sort-merge edge generation,
//! thread fan-out) must produce an index *byte-identical* to the retained
//! sequential reference (`DualLayerIndex::build_reference`) — not just
//! query-equivalent. Equality is checked on the serialized snapshot, so
//! any drift in layer order, edge order, seeds, or pseudo-tuples fails.

use drtopk::common::{Distribution, WorkloadSpec};
use drtopk::core::{DlOptions, DualLayerIndex, EdsPolicy, ZeroMode};
use drtopk::storage::format::index_to_bytes;

fn distributions() -> [Distribution; 3] {
    [
        Distribution::Independent,
        Distribution::AntiCorrelated,
        Distribution::Correlated,
    ]
}

/// Serialized bytes of an index built with the given options/threads.
fn optimized_bytes(rel: &drtopk::common::Relation, base: &DlOptions, threads: usize) -> Vec<u8> {
    let idx = DualLayerIndex::build(
        rel,
        DlOptions {
            parallel: true,
            build_threads: threads,
            ..base.clone()
        },
    );
    index_to_bytes(&idx.to_snapshot())
}

fn assert_identical(rel: &drtopk::common::Relation, base: &DlOptions, ctx: &str) {
    let reference = DualLayerIndex::build_reference(rel, base.clone());
    let want = index_to_bytes(&reference.to_snapshot());
    // Sequential optimized path, then the block/parallel path at several
    // worker counts (0 = all cores). Bit-identity must hold at every one.
    let seq = DualLayerIndex::build(rel, base.clone());
    assert_eq!(
        index_to_bytes(&seq.to_snapshot()),
        want,
        "{ctx}: sequential optimized build differs from reference"
    );
    for threads in [1, 2, 0] {
        assert_eq!(
            optimized_bytes(rel, base, threads),
            want,
            "{ctx} threads={threads}: optimized build differs from reference"
        );
    }
}

#[test]
fn optimized_build_matches_reference_bytes() {
    // The full n grid is expensive under the unoptimized debug profile;
    // tier-1 (`cargo test -q`) runs the small sizes, release runs all.
    let sizes: &[usize] = if cfg!(debug_assertions) {
        &[100, 1_000]
    } else {
        &[100, 1_000, 10_000]
    };
    for &n in sizes {
        for dist in distributions() {
            for d in [2, 3, 4] {
                let rel = WorkloadSpec::new(dist, d, n, 97).generate();
                assert_identical(
                    &rel,
                    &DlOptions::dl_plus(),
                    &format!("DL+ {dist:?} n={n} d={d}"),
                );
            }
        }
    }
}

#[test]
fn optimized_build_matches_reference_across_variants() {
    let rel = WorkloadSpec::new(Distribution::AntiCorrelated, 3, 300, 41).generate();
    let variants: Vec<(&str, DlOptions)> = vec![
        ("DL", DlOptions::dl()),
        ("DG", DlOptions::dg()),
        ("DG+", DlOptions::dg_plus()),
        (
            "DL+/AllFacets",
            DlOptions {
                eds_policy: EdsPolicy::AllFacets,
                ..DlOptions::dl_plus()
            },
        ),
        (
            "DL+/BestUniform",
            DlOptions {
                eds_policy: EdsPolicy::BestUniform,
                ..DlOptions::dl_plus()
            },
        ),
        (
            "DL/capped-fine",
            DlOptions {
                max_fine_layers: 3,
                ..DlOptions::dl()
            },
        ),
        (
            "DL+/fixed-clusters",
            DlOptions {
                zero: ZeroMode::Clustered { clusters: 7 },
                ..DlOptions::dl_plus()
            },
        ),
    ];
    for (name, base) in &variants {
        assert_identical(&rel, base, name);
    }
    // 2-d exact zero layer exercises the chain-member seed exclusion.
    let rel2 = WorkloadSpec::new(Distribution::Independent, 2, 500, 43).generate();
    assert_identical(&rel2, &DlOptions::dl_plus(), "DL+ 2d exact zero");
}

#[test]
fn optimized_build_matches_reference_tiny_and_empty() {
    for n in [0, 1, 2, 5] {
        for d in [2, 3] {
            let rel = WorkloadSpec::new(Distribution::Independent, d, n, 7).generate();
            assert_identical(&rel, &DlOptions::dl_plus(), &format!("tiny n={n} d={d}"));
        }
    }
}
