//! Concurrency: a built index is immutable and `Sync` — many threads may
//! query it simultaneously with identical results.

use drtopk::common::{topk_bruteforce, Distribution, Weights, WorkloadSpec};
use drtopk::core::{DlOptions, DualLayerIndex, QueryScratch};
use std::sync::Arc;

#[test]
fn concurrent_queries_are_consistent() {
    let rel = WorkloadSpec::new(Distribution::AntiCorrelated, 4, 2000, 3).generate();
    let idx = Arc::new(DualLayerIndex::build(&rel, DlOptions::default()));
    let rel = Arc::new(rel);
    let mut handles = Vec::new();
    for worker in 0..8u64 {
        let idx = Arc::clone(&idx);
        let rel = Arc::clone(&rel);
        handles.push(std::thread::spawn(move || {
            use rand::{rngs::StdRng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(worker);
            let mut scratch = QueryScratch::for_index(&idx);
            for _ in 0..50 {
                let w = Weights::random(4, &mut rng);
                let got = idx.topk_with_scratch(&w, 10, &mut scratch);
                assert_eq!(got.ids, topk_bruteforce(&rel, &w, 10));
            }
        }));
    }
    for h in handles {
        h.join().expect("worker panicked");
    }
}

#[test]
fn index_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<DualLayerIndex>();
    assert_send_sync::<drtopk::baselines::HlIndex>();
    assert_send_sync::<drtopk::baselines::OnionIndex>();
    assert_send_sync::<drtopk::baselines::AppRiIndex>();
}
