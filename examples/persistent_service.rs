//! A miniature "service" lifecycle: build once, persist to disk, reload,
//! serve queries with reusable scratch, absorb live inserts/deletes with
//! the dynamic wrapper, and account block I/O under the paper's
//! layer-clustered disk layout.
//!
//! Run with: `cargo run --release --example persistent_service`

use drtopk::common::{Distribution, Weights, WorkloadSpec};
use drtopk::core::{DlOptions, DualLayerIndex, DynamicIndex, QueryScratch};
use drtopk::storage::{
    blocks::{query_accesses, BlockLayout, Placement},
    load_index, save_index,
};
use std::time::Instant;

fn main() {
    let dir = std::env::temp_dir().join("drtopk_service");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("catalog.drtopk");

    // Build once (parallel construction), persist.
    let data = WorkloadSpec::new(Distribution::AntiCorrelated, 4, 20_000, 7).generate();
    let t0 = Instant::now();
    let index = DualLayerIndex::build(
        &data,
        DlOptions {
            parallel: true,
            ..DlOptions::default()
        },
    );
    println!(
        "built in {:.2?} ({} ∃-edges)",
        t0.elapsed(),
        index.stats().exists_edges
    );
    save_index(&index, &path).expect("persist index");
    println!(
        "persisted to {} ({} KiB)",
        path.display(),
        std::fs::metadata(&path).unwrap().len() / 1024
    );

    // A later process: reload instead of rebuilding.
    let t0 = Instant::now();
    let index = load_index(&path).expect("reload index");
    println!("reloaded in {:.2?}", t0.elapsed());

    // Serve a query burst with reusable scratch.
    let weights: Vec<Weights> = {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(9);
        (0..1000).map(|_| Weights::random(4, &mut rng)).collect()
    };
    let mut scratch = QueryScratch::for_index(&index);
    let t0 = Instant::now();
    let mut total_cost = 0u64;
    for w in &weights {
        total_cost += index.topk_with_scratch(w, 10, &mut scratch).cost.total();
    }
    println!(
        "1000 top-10 queries in {:.2?} (mean {:.1} tuples evaluated)",
        t0.elapsed(),
        total_cost as f64 / weights.len() as f64
    );

    // I/O accounting under the paper's disk-based layout note.
    let w = Weights::uniform(4);
    let accesses = query_accesses(&index, &w, 10);
    let clustered = BlockLayout::new(&index, Placement::LayerClustered, 64);
    let heap_file = BlockLayout::new(&index, Placement::InsertionOrder, 64);
    println!(
        "one top-10 query touches {} tuples => {} blocks layer-clustered vs {} heap-file (of {})",
        accesses.len(),
        clustered.blocks_touched(&accesses),
        heap_file.blocks_touched(&accesses),
        clustered.blocks()
    );

    // Live updates via the dynamic wrapper.
    let mut live = DynamicIndex::new(&data, DlOptions::default(), 0.15);
    let before = live.topk(&w, 3).0;
    let killer = live
        .insert(&[0.001, 0.001, 0.001, 0.001])
        .expect("valid row");
    let after = live.topk(&w, 3).0;
    assert_eq!(
        after[0], killer,
        "a dominating insert takes rank 1 immediately"
    );
    live.delete(killer);
    assert_eq!(
        live.topk(&w, 3).0,
        before,
        "delete restores the original answer"
    );
    println!(
        "dynamic wrapper: insert/delete round-trip OK ({} live tuples, {} rebuilds)",
        live.len(),
        live.rebuilds()
    );
}
