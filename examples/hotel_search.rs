//! The paper's motivating scenario (Example 1): a hotel-finding service.
//!
//! `Hotel(hno, name, price, distance)` — Alice wants cheap hotels close to
//! the airport with weight (0.5, 0.5); Betty cares more about price with
//! (0.75, 0.25). One dual-resolution index serves both, touching only a
//! handful of tuples per query.
//!
//! Run with: `cargo run --release --example hotel_search`

use drtopk::common::{Relation, Weights};
use drtopk::core::{DlOptions, DualLayerIndex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a plausible hotel table: price correlates inversely with
/// distance from the airport (airport hotels are pricey), plus noise.
fn generate_hotels(n: usize, seed: u64) -> (Relation, Vec<String>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rel = Relation::new(2).expect("2 attributes");
    let mut names = Vec::with_capacity(n);
    for i in 0..n {
        let dist: f64 = rng.gen::<f64>().powf(0.7); // more hotels downtown
        let price_base = 0.75 - 0.45 * dist; // closer => pricier
        let price = (price_base + 0.35 * (rng.gen::<f64>() - 0.5)).clamp(0.02, 0.98);
        rel.push(&[price, dist]).expect("valid row");
        names.push(format!("Hotel #{i:04}"));
    }
    (rel, names)
}

fn main() {
    let (hotels, names) = generate_hotels(5_000, 7);
    let index = DualLayerIndex::build(&hotels, DlOptions::default());
    println!(
        "indexed {} hotels: {} coarse layers, first layer holds {} candidates",
        hotels.len(),
        index.stats().coarse_layers,
        index.stats().first_layer_size
    );

    let users = [
        ("Alice", vec![0.5, 0.5], 5usize),
        ("Betty", vec![0.75, 0.25], 5),
    ];
    for (user, w, k) in users {
        let w = Weights::new(w).expect("valid weights");
        let result = index.topk(&w, k);
        println!("\n{user}'s top-{k} (price weight {:.2}):", w.as_slice()[0]);
        println!(
            "  {:<12} {:>8} {:>10} {:>8}",
            "hotel", "price", "distance", "score"
        );
        for &id in &result.ids {
            let t = hotels.tuple(id);
            println!(
                "  {:<12} {:>8.3} {:>10.3} {:>8.4}",
                names[id as usize],
                t[0],
                t[1],
                w.score(t)
            );
        }
        println!(
            "  evaluated {} of {} hotels ({:.2}%)",
            result.cost.total(),
            hotels.len(),
            100.0 * result.cost.total() as f64 / hotels.len() as f64
        );
    }

    // The same index also serves much larger retrieval sizes correctly.
    let w = Weights::new(vec![0.3, 0.7]).expect("valid weights");
    let wide = index.topk(&w, 50);
    println!(
        "\ntop-50 for a distance-focused user: evaluated {} tuples ({:.2}%)",
        wide.cost.total(),
        100.0 * wide.cost.total() as f64 / hotels.len() as f64
    );
}
