//! Quickstart: build a dual-resolution layer index and answer top-k
//! queries for several user preferences.
//!
//! Run with: `cargo run --release --example quickstart`

use drtopk::common::{Distribution, Weights, WorkloadSpec};
use drtopk::core::{DlOptions, DualLayerIndex};

fn main() {
    // A synthetic relation: 10,000 tuples, 3 attributes in [0,1],
    // anti-correlated (the hard case for layer indexes).
    let data = WorkloadSpec::new(Distribution::AntiCorrelated, 3, 10_000, 42).generate();
    println!("dataset: n={} d={}", data.len(), data.dims());

    // Build DL+ (fine sublayers + zero layer) — the paper's full method.
    let t0 = std::time::Instant::now();
    let index = DualLayerIndex::build(&data, DlOptions::default());
    let stats = index.stats();
    println!(
        "built index in {:.2?}: {} coarse layers, {} fine sublayers, \
         {} ∀-edges, {} ∃-edges, {} pseudo-tuples",
        t0.elapsed(),
        stats.coarse_layers,
        stats.fine_layers,
        stats.forall_edges,
        stats.exists_edges,
        stats.pseudo_tuples,
    );

    // Different users, different priorities, one index.
    let preferences = [
        ("balanced", vec![1.0, 1.0, 1.0]),
        ("price-sensitive", vec![4.0, 1.0, 1.0]),
        ("quality-first", vec![1.0, 1.0, 6.0]),
    ];
    for (name, raw) in preferences {
        let w = Weights::new(raw).expect("valid weights");
        let result = index.topk(&w, 5);
        println!("\ntop-5 for {name} (w = {:?}):", w.as_slice());
        for (rank, &id) in result.ids.iter().enumerate() {
            let t = data.tuple(id);
            println!("  #{} tuple {id}: {t:?} score {:.4}", rank + 1, w.score(t));
        }
        println!(
            "  cost: {} of {} tuples evaluated ({:.2}%)",
            result.cost.total(),
            data.len(),
            100.0 * result.cost.total() as f64 / data.len() as f64
        );
    }
}
