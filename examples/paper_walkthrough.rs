//! Walks through every figure and example of the paper on its 11-tuple toy
//! dataset (Fig. 1): skyline layers (Fig. 2a), convex layers (Fig. 2b),
//! the dual-resolution layer with its ∀/∃ edges (Fig. 5, Examples 2–4),
//! and the k = 3 query trace of Table III.
//!
//! Run with: `cargo run --release --example paper_walkthrough`

use drtopk::baselines::OnionIndex;
use drtopk::common::relation::{toy_dataset, toy_label};
use drtopk::common::{TupleId, Weights};
use drtopk::core::{DlOptions, DualLayerIndex, NodeId};
use drtopk::skyline::{skyline_layers, SkylineAlgo};

fn labels(ids: impl IntoIterator<Item = TupleId>) -> String {
    let mut s: Vec<char> = ids.into_iter().map(toy_label).collect();
    s.sort_unstable();
    s.iter()
        .map(|c| c.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

fn main() {
    let r = toy_dataset();
    println!("Fig. 1 — toy dataset (price, distance) ×10:");
    for (id, t) in r.iter() {
        println!(
            "  {}: ({:.1}, {:.1})",
            toy_label(id),
            t[0] * 10.0,
            t[1] * 10.0
        );
    }

    let all: Vec<TupleId> = (0..r.len() as TupleId).collect();
    println!("\nFig. 2(a) — skyline layers:");
    for (i, layer) in skyline_layers(&r, &all, SkylineAlgo::BSkyTree)
        .iter()
        .enumerate()
    {
        println!("  L{} = {{{}}}", i + 1, labels(layer.iter().copied()));
    }

    println!("\nFig. 2(b) — convex layers (Onion):");
    let onion = OnionIndex::build(&r, 0);
    for (i, layer) in onion.layers().iter().enumerate() {
        println!("  L{} = {{{}}}", i + 1, labels(layer.iter().copied()));
    }

    println!("\nFig. 5 — dual-resolution layer:");
    let idx = DualLayerIndex::build(&r, DlOptions::dl());
    for (ci, layer) in idx.coarse_layers().iter().enumerate() {
        let fine: Vec<String> = layer
            .fine
            .iter()
            .map(|f| format!("{{{}}}", labels(f.iter().copied())))
            .collect();
        println!("  L{} = {}", ci + 1, fine.join(" | "));
    }
    println!("  ∀-dominance edges (solid):");
    for id in 0..r.len() as NodeId {
        let out = idx.forall_out(id);
        if !out.is_empty() {
            println!(
                "    {} → {{{}}}",
                toy_label(id),
                labels(out.iter().map(|&t| t as TupleId))
            );
        }
    }
    println!("  ∃-dominance edges (dotted):");
    for id in 0..r.len() as NodeId {
        let out = idx.exists_out(id);
        if !out.is_empty() {
            println!(
                "    {} ⤳ {{{}}}",
                toy_label(id),
                labels(out.iter().map(|&t| t as TupleId))
            );
        }
    }

    println!("\nTable III — top-3 query, w = (0.5, 0.5):");
    let w = Weights::uniform(2);
    let (result, trace) = idx.topk_traced(&w, 3);
    println!(
        "  seeds (L¹¹): {{{}}}",
        labels(trace.seeds.iter().map(|&n| n as TupleId))
    );
    for (step, s) in trace.steps.iter().enumerate() {
        println!(
            "  step {}: pop {}   Q = [{}]   K = {{{}}}",
            step + 1,
            toy_label(s.popped as TupleId),
            s.queue_after
                .iter()
                .map(|&n| toy_label(n as TupleId).to_string())
                .collect::<Vec<_>>()
                .join(", "),
            labels(s.answers_after.iter().copied()),
        );
    }
    println!(
        "  answers: {{{}}} — cost {} of {} tuples",
        labels(result.ids.iter().copied()),
        result.cost.total(),
        r.len()
    );

    println!("\nSection V-A — exact 2-d zero layer (DL+):");
    let dlp = DualLayerIndex::build(&r, DlOptions::dl_plus());
    let z = dlp.zero2d().expect("2-d exact zero layer");
    println!(
        "  chain: [{}], w₁ breakpoints: {:?}",
        z.chain
            .iter()
            .map(|&t| toy_label(t).to_string())
            .collect::<Vec<_>>()
            .join(", "),
        z.breakpoints
            .iter()
            .map(|b| (b * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );
    let res = dlp.topk(&w, 3);
    println!(
        "  same top-3 = {{{}}} at cost {} (vs {} without the zero layer)",
        labels(res.ids.iter().copied()),
        res.cost.total(),
        result.cost.total()
    );
}
