//! Compares every index in the workspace on one dataset: build time and
//! per-query access cost (the paper's Definition 9 metric) side by side.
//!
//! Run with: `cargo run --release --example index_comparison [n] [d]`

use drtopk::baselines::{dg_index, dg_plus_index, HlIndex, OnionIndex};
use drtopk::common::{Cost, Distribution, Weights, WorkloadSpec};
use drtopk::core::{DlOptions, DualLayerIndex};
use drtopk::lists::ta_topk;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(5_000);
    let d: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(3);
    let queries = 40;
    let k = 10;

    for dist in [Distribution::Independent, Distribution::AntiCorrelated] {
        let rel = WorkloadSpec::new(dist, d, n, 99).generate();
        println!(
            "\n=== {} — n={n}, d={d}, k={k}, {queries} random queries ===",
            dist.code()
        );

        let mut weights = Vec::with_capacity(queries);
        let mut rng = StdRng::seed_from_u64(1234);
        for _ in 0..queries {
            weights.push(Weights::random(d, &mut rng));
        }

        let report = |name: &str, build_s: f64, run: &mut dyn FnMut(&Weights) -> Cost| {
            let mut total = 0u64;
            for w in &weights {
                total += run(w).total();
            }
            println!(
                "  {:<8} build {:>8.3}s   mean cost {:>10.1} tuples ({:.3}% of n)",
                name,
                build_s,
                total as f64 / queries as f64,
                100.0 * total as f64 / (queries * n) as f64
            );
        };

        let t = Instant::now();
        let onion = OnionIndex::build(&rel, 64);
        let b = t.elapsed().as_secs_f64();
        report("Onion", b, &mut |w| onion.topk(w, k).1);

        let t = Instant::now();
        let hl = HlIndex::build(&rel, 64);
        let b = t.elapsed().as_secs_f64();
        report("HL", b, &mut |w| hl.topk_hl(w, k).1);
        report("HL+", b, &mut |w| hl.topk_hl_plus(w, k).1);

        let t = Instant::now();
        let dg = dg_index(&rel);
        let b = t.elapsed().as_secs_f64();
        report("DG", b, &mut |w| dg.topk(w, k).cost);

        let t = Instant::now();
        let dgp = dg_plus_index(&rel);
        let b = t.elapsed().as_secs_f64();
        report("DG+", b, &mut |w| dgp.topk(w, k).cost);

        let t = Instant::now();
        let dl = DualLayerIndex::build(&rel, DlOptions::dl());
        let b = t.elapsed().as_secs_f64();
        report("DL", b, &mut |w| dl.topk(w, k).cost);

        let t = Instant::now();
        let dlp = DualLayerIndex::build(&rel, DlOptions::dl_plus());
        let b = t.elapsed().as_secs_f64();
        report("DL+", b, &mut |w| dlp.topk(w, k).cost);

        // List-based reference without any index reuse (builds lists per
        // query — shown for context, not a layer index).
        report("TA", 0.0, &mut |w| ta_topk(&rel, w, k).1);
    }
}
