//! Indexing real-world-shaped data: parse a CSV catalog with mixed
//! preference directions (price ↓, rating ↑, distance ↓), normalize into
//! the index's smaller-is-better `[0,1]^d` space, answer queries, and
//! report answers back in raw units.
//!
//! Run with: `cargo run --release --example csv_catalog`

use drtopk::common::{relation_from_csv, ColumnSpec, Direction, Weights};
use drtopk::core::{DlOptions, DualLayerIndex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// Fabricates a hotel CSV in raw units: id, name, price($), rating(1-5),
/// distance(km).
fn fabricate_csv(n: usize, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut csv = String::from("id,name,price_usd,rating,distance_km\n");
    for i in 0..n {
        let dist: f64 = rng.gen_range(0.2..25.0);
        let price = (60.0 + 900.0 / (1.0 + dist) + rng.gen_range(-30.0..90.0)).max(25.0);
        let rating = rng.gen_range(1.0..=5.0f64);
        writeln!(csv, "{i},Hotel-{i},{price:.0},{rating:.1},{dist:.1}").unwrap();
    }
    csv
}

fn main() {
    let csv = fabricate_csv(8_000, 3);
    let specs = [
        ColumnSpec {
            column: 2,
            direction: Direction::LowerIsBetter,
        }, // price
        ColumnSpec {
            column: 3,
            direction: Direction::HigherIsBetter,
        }, // rating
        ColumnSpec {
            column: 4,
            direction: Direction::LowerIsBetter,
        }, // distance
    ];
    let (rel, norm) = relation_from_csv(csv.as_bytes(), &specs).expect("parse catalog");
    println!(
        "parsed {} rows into a {}-attribute relation",
        rel.len(),
        rel.dims()
    );

    let index = DualLayerIndex::build(&rel, DlOptions::default());
    println!(
        "index: {} coarse layers / {} fine sublayers, first layer {} tuples",
        index.stats().coarse_layers,
        index.stats().fine_layers,
        index.stats().first_layer_size
    );

    let profiles = [
        ("budget traveler", vec![3.0, 1.0, 1.0]),
        ("five-star seeker", vec![1.0, 5.0, 1.0]),
        ("airport hopper", vec![1.0, 1.0, 4.0]),
    ];
    for (who, raw_w) in profiles {
        let w = Weights::new(raw_w).unwrap();
        let res = index.topk(&w, 5);
        println!("\ntop-5 for the {who}:");
        println!("  {:>10} {:>7} {:>11}", "price $", "stars", "distance km");
        for &id in &res.ids {
            let raw = norm.denormalize(rel.tuple(id)).unwrap();
            println!("  {:>10.0} {:>7.1} {:>11.1}", raw[0], raw[1], raw[2]);
        }
        println!(
            "  ({} of {} tuples evaluated — {:.2}%)",
            res.cost.total(),
            rel.len(),
            100.0 * res.cost.total() as f64 / rel.len() as f64
        );
    }
}
