//! # drtopk — Dual-Resolution Layer Indexing for Top-k Queries
//!
//! A from-scratch Rust implementation of the dual-resolution layer index of
//! Lee, Cho & Hwang (*Efficient Dual-Resolution Layer Indexing for Top-k
//! Queries*, ICDE 2012), together with every substrate and baseline the
//! paper builds on: skyline algorithms (BNL, SFS, BSkyTree), d-dimensional
//! convex hulls and convex skylines, the threshold algorithm over sorted
//! lists, k-means clustering, and the Onion / DG / DG+ / HL / HL+ indexes.
//!
//! This facade crate re-exports the workspace's public API. Start with
//! [`DualLayerIndex`](core::DualLayerIndex):
//!
//! ```
//! use drtopk::common::{Distribution, Weights, WorkloadSpec};
//! use drtopk::core::{DualLayerIndex, DlOptions};
//!
//! let data = WorkloadSpec::new(Distribution::Independent, 3, 500, 42).generate();
//! let index = DualLayerIndex::build(&data, DlOptions::default());
//! let w = Weights::new(vec![0.2, 0.3, 0.5]).unwrap();
//! let result = index.topk(&w, 10);
//! assert_eq!(result.ids.len(), 10);
//! // The paper's cost metric: tuples actually scored during the query.
//! assert!(result.cost.total() <= 500);
//! ```

pub use drtopk_baselines as baselines;
pub use drtopk_cluster as cluster;
pub use drtopk_common as common;
pub use drtopk_core as core;
pub use drtopk_geometry as geometry;
pub use drtopk_lists as lists;
pub use drtopk_obs as obs;
pub use drtopk_skyline as skyline;
pub use drtopk_storage as storage;
