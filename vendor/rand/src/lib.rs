//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand` it actually uses: [`Rng::gen`] /
//! [`Rng::gen_range`] over floats and integers, [`SeedableRng::seed_from_u64`],
//! and [`rngs::StdRng`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — statistically solid for synthetic workloads and property
//! tests, deterministic per seed, but *not* the upstream ChaCha12 stream
//! (seeds produce different sequences than real `rand 0.8`; nothing in the
//! workspace depends on the exact upstream stream).

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution subset).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Integer and float types usable with [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)`; `hi` is reachable iff `inclusive`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
        assert!(
            if inclusive { lo <= hi } else { lo < hi },
            "gen_range: empty range"
        );
        let x = f64::sample(rng);
        let v = lo + x * (hi - lo);
        if v < hi || inclusive {
            v
        } else {
            // Guard the open upper bound against rounding up to `hi`.
            lo
        }
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
        f64::sample_range(rng, lo as f64, hi as f64, inclusive) as f32
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                assert!(
                    if inclusive { lo <= hi } else { lo < hi },
                    "gen_range: empty range"
                );
                // Widths fit in u64 for every supported type; the widening
                // multiply maps 64 random bits onto the span without modulo
                // bias worth caring about at these span sizes.
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                if span == 0 {
                    // `lo..=MAX` over the full domain: all bits are valid.
                    return rng.next_u64() as $t;
                }
                let off = ((u128::from(rng.next_u64()) * span) >> 64) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range argument forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, *self.start(), *self.end(), true)
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from `range` (`a..b` half-open, `a..=b` inclusive).
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_state(mut sm: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng::from_state(seed)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::StdRng;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn f64_is_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(0usize..=4);
            assert!(y <= 4);
            let f = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let g = rng.gen_range(1.0..=5.0f64);
            assert!((1.0..=5.0).contains(&g));
            let s = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(s > 0.0 && s < 1.0);
        }
    }

    #[test]
    fn integer_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
        let mut seen_inc = [false; 3];
        for _ in 0..1000 {
            seen_inc[rng.gen_range(0usize..=2)] = true;
        }
        assert!(seen_inc.iter().all(|&s| s));
    }

    #[test]
    fn signed_ranges() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let x = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&x));
        }
    }
}
