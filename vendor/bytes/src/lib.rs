//! Offline drop-in subset of the `bytes` crate.
//!
//! Implements exactly the API surface the storage format code uses:
//! [`BytesMut`] as an append-only little-endian encoder, [`Bytes`] as a
//! consuming little-endian decoder, and the [`Buf`]/[`BufMut`] traits that
//! host their methods. Backed by plain `Vec<u8>` — no shared-buffer
//! refcounting, which the workspace never relied on.

use std::ops::Deref;

/// Read cursor over a byte buffer (little-endian accessors).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Borrows the unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skips `n` bytes.
    ///
    /// # Panics
    /// Panics if fewer than `n` bytes remain.
    fn advance(&mut self, n: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.chunk()[..4].try_into().unwrap());
        self.advance(4);
        v
    }

    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.chunk()[..8].try_into().unwrap());
        self.advance(8);
        v
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

/// Append-only writer (little-endian encoders).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

/// Growable byte buffer, written through [`BufMut`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.inner.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.inner,
            pos: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

/// Immutable byte buffer with a read cursor, consumed through [`Buf`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Copies a slice into an owned buffer.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes {
            data: src.to_vec(),
            pos: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.remaining()
    }

    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.remaining(), "advance past end of buffer");
        self.pos += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u8(0xAB);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(0x0123_4567_89AB_CDEF);
        w.put_f64_le(std::f64::consts::PI);
        w.put_slice(b"xyz");
        assert_eq!(w.len(), 1 + 4 + 8 + 8 + 3);

        let mut r = Bytes::copy_from_slice(&w);
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_f64_le(), std::f64::consts::PI);
        assert!(r.has_remaining());
        assert_eq!(r.chunk(), b"xyz");
        r.advance(3);
        assert!(!r.has_remaining());
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn advance_past_end_panics() {
        let mut b = Bytes::copy_from_slice(b"ab");
        b.advance(3);
    }

    #[test]
    fn freeze_matches_copy() {
        let mut w = BytesMut::new();
        w.put_u32_le(7);
        let frozen = w.clone().freeze();
        assert_eq!(frozen, Bytes::copy_from_slice(&w));
    }
}
